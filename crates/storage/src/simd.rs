//! Explicit-SIMD inner loops for the intersection kernels and cursor seeks.
//!
//! Everything here is **observationally identical** to the scalar code it
//! replaces: same output values in the same order, and — because the callers
//! charge counted work through closed-form replays (see `kernels::merge2_cost`
//! and the seek replays in `ops`) — identical deterministic work counters. The
//! SIMD level is detected once per process and only changes *wall-clock*, never
//! results, so `BENCH_joins.json` work ratios stay exactly 1.000.
//!
//! Dispatch:
//! * x86-64 with AVX2 → 4×u64 block kernels (`_mm256_cmpeq_epi64` + movemask).
//! * aarch64 with NEON → 2×u64 block kernels.
//! * anything else, or `WCOJ_FORCE_SCALAR=1` → the scalar fallback.
//!
//! The force-scalar escape hatch is read once at first use; tests that need to
//! cover both paths on one machine pass an explicit [`SimdLevel`], or flip the
//! process-wide dispatch between runs with [`force_active_level`], instead of
//! mutating the environment.

// The only unsafe in the storage crate (with the `topology` pinning syscall):
// `#[target_feature]` intrinsics, each call guarded by runtime detection.
#![allow(unsafe_code)]

use crate::Value;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level the block kernels run at. Detected once per process
/// ([`active_level`]); every SIMD entry point also accepts an explicit level so
/// differential tests can sweep `Scalar` vs the detected level deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// AVX2 4-lane u64 blocks (x86-64).
    Avx2,
    /// NEON 2-lane u64 blocks (aarch64).
    Neon,
}

/// Dispatch-level cache: 0 = not yet detected, otherwise `encode_level + 1`.
/// An atomic rather than a `OnceLock` so [`force_active_level`] can re-point
/// dispatch for in-process scalar-vs-SIMD A/B runs (tests, the E7 bench).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode_level(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 1,
        SimdLevel::Avx2 => 2,
        SimdLevel::Neon => 3,
    }
}

fn decode_level(byte: u8) -> SimdLevel {
    match byte {
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Neon,
        _ => SimdLevel::Scalar,
    }
}

/// The SIMD level every kernel dispatches to by default: the best level the
/// host supports, unless `WCOJ_FORCE_SCALAR=1` pins the scalar fallback.
/// Detected once at first use and stable thereafter — except for explicit
/// [`force_active_level`] calls.
pub fn active_level() -> SimdLevel {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let level = if std::env::var("WCOJ_FORCE_SCALAR").is_ok_and(|v| v == "1") {
                SimdLevel::Scalar
            } else {
                detect_level()
            };
            // first writer wins, so racing initializers agree on the answer
            let _ = ACTIVE.compare_exchange(
                0,
                encode_level(level),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            decode_level(ACTIVE.load(Ordering::Relaxed))
        }
        byte => decode_level(byte),
    }
}

/// Re-point process-wide dispatch at `level` — the in-process A/B hook used by
/// the SIMD-parity tests and the E7 calibration bench to compare scalar and
/// vector paths without respawning under `WCOJ_FORCE_SCALAR=1`. Panics if the
/// host cannot execute `level`. Not for concurrent use with live queries: flip
/// it only between runs.
pub fn force_active_level(level: SimdLevel) {
    assert!(
        runnable_levels().contains(&level),
        "SIMD level {level:?} is not runnable on this host"
    );
    ACTIVE.store(encode_level(level), Ordering::Relaxed);
}

/// The best level the host supports, ignoring the force-scalar override.
pub fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdLevel::Neon;
        }
    }
    SimdLevel::Scalar
}

/// Levels that can actually run on this host (always includes `Scalar`), for
/// tests sweeping every executable path.
pub fn runnable_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    if detect_level() != SimdLevel::Scalar {
        levels.push(detect_level());
    }
    levels
}

/// Append the sorted intersection of two sorted, deduplicated slices to `out`.
///
/// Block algorithm (Inoue et al. / Schlegel et al. style): compare a 4-lane (or
/// 2-lane) block of `a` against every rotation of a block of `b`, push the
/// matching `a` lanes in lane order, then advance whichever block has the
/// smaller maximum (both on a tie). A matched value can never reappear (values
/// are distinct within each list) and later matches are strictly larger, so the
/// output is the ascending intersection — exactly the scalar merge's output.
pub fn merge2_into(level: SimdLevel, out: &mut Vec<Value>, a: &[Value], b: &[Value]) {
    match level {
        SimdLevel::Scalar => merge2_scalar(out, a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { merge2_avx2(out, a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { merge2_neon(out, a, b) },
        #[allow(unreachable_patterns)]
        _ => merge2_scalar(out, a, b),
    }
}

/// Scalar reference: the branchless two-pointer merge (no counting — callers
/// that need the comparison tally use `kernels::merge2` or the closed form).
fn merge2_scalar(out: &mut Vec<Value>, a: &[Value], b: &[Value]) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        if x == y {
            out.push(x);
        }
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
}

/// Scalar tail shared by the block kernels once fewer than a block remains.
#[inline]
fn merge2_tail(out: &mut Vec<Value>, a: &[Value], b: &[Value], mut i: usize, mut j: usize) {
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        if x == y {
            out.push(x);
        }
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn merge2_avx2(out: &mut Vec<Value>, a: &[Value], b: &[Value]) {
    use core::arch::x86_64::*;
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        // SAFETY: i+4 <= a.len() and j+4 <= b.len() bound every unaligned load.
        let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i) };
        let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i) };
        // va against all four rotations of vb: a lane matches iff its value
        // occurs anywhere in the b block
        let m0 = _mm256_cmpeq_epi64(va, vb);
        let m1 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b00_11_10_01));
        let m2 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b01_00_11_10));
        let m3 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b10_01_00_11));
        let hit = _mm256_or_si256(_mm256_or_si256(m0, m1), _mm256_or_si256(m2, m3));
        let mut mask = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32;
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            out.push(a[i + lane]);
            mask &= mask - 1;
        }
        let a_max = a[i + 3];
        let b_max = b[j + 3];
        i += ((a_max <= b_max) as usize) * 4;
        j += ((b_max <= a_max) as usize) * 4;
    }
    merge2_tail(out, a, b, i, j);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn merge2_neon(out: &mut Vec<Value>, a: &[Value], b: &[Value]) {
    use core::arch::aarch64::*;
    let (mut i, mut j) = (0usize, 0usize);
    while i + 2 <= a.len() && j + 2 <= b.len() {
        // SAFETY: i+2 <= a.len() and j+2 <= b.len() bound every load.
        let va = unsafe { vld1q_u64(a.as_ptr().add(i)) };
        let vb = unsafe { vld1q_u64(b.as_ptr().add(j)) };
        let m0 = vceqq_u64(va, vb);
        let m1 = vceqq_u64(va, vextq_u64(vb, vb, 1));
        let hit = vorrq_u64(m0, m1);
        if vgetq_lane_u64(hit, 0) != 0 {
            out.push(a[i]);
        }
        if vgetq_lane_u64(hit, 1) != 0 {
            out.push(a[i + 1]);
        }
        let a_max = a[i + 1];
        let b_max = b[j + 1];
        i += ((a_max <= b_max) as usize) * 2;
        j += ((b_max <= a_max) as usize) * 2;
    }
    merge2_tail(out, a, b, i, j);
}

/// First index in `values[start..end]` whose value is `>= target` (the partition
/// point), found with SIMD compare+movemask over 4-lane blocks. Positions and
/// ordering match `slice::partition_point` exactly; only the instruction mix
/// differs. Used by the seek fast paths on short windows, where a predictable
/// forward scan beats a branchy binary search.
///
/// Windows under one vector's width stay on the inlinable scalar loop: a
/// `#[target_feature]` function can't inline into its caller, and for 1–3
/// elements the outlined call costs more than the scan it replaces.
#[inline]
pub fn linear_lub(
    level: SimdLevel,
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
) -> usize {
    debug_assert!(start <= end && end <= values.len());
    if end - start < 17 {
        return linear_lub_scalar(values, start, end, target);
    }
    match level {
        SimdLevel::Scalar => linear_lub_scalar(values, start, end, target),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { linear_lub_avx2(values, start, end, target) },
        #[allow(unreachable_patterns)]
        _ => linear_lub_scalar(values, start, end, target),
    }
}

#[inline]
fn linear_lub_scalar(values: &[Value], start: usize, end: usize, target: Value) -> usize {
    let mut i = start;
    while i < end && values[i] < target {
        i += 1;
    }
    i
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn linear_lub_avx2(values: &[Value], start: usize, end: usize, target: Value) -> usize {
    use core::arch::x86_64::*;
    // unsigned `< target` via sign-bit flip + signed greater-than:
    // target > v  <=>  (target ^ MSB) >s (v ^ MSB)
    let sign = _mm256_set1_epi64x(i64::MIN);
    let vt = _mm256_xor_si256(_mm256_set1_epi64x(target as i64), sign);
    let mut i = start;
    while i + 4 <= end {
        // SAFETY: i+4 <= end <= values.len() bounds the load.
        let v = unsafe { _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i) };
        let lt = _mm256_cmpgt_epi64(vt, _mm256_xor_si256(v, sign));
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(lt)) as u32;
        if mask != 0b1111 {
            // sorted input: the `< target` lanes form a prefix of ones
            return i + mask.count_ones() as usize;
        }
        i += 4;
    }
    linear_lub_scalar(values, i, end, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_intersect(a: &[Value], b: &[Value]) -> Vec<Value> {
        a.iter().copied().filter(|v| b.contains(v)).collect()
    }

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn sorted_unique(seed: &mut u64, len: usize, span: u64) -> Vec<Value> {
        let mut v: Vec<Value> = (0..len).map(|_| xorshift(seed) % span).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn merge2_levels_agree_on_random_shapes() {
        let mut seed = 0x9E3779B97F4A7C15;
        for level in runnable_levels() {
            for &(la, lb, span) in &[
                (0usize, 5usize, 10u64),
                (1, 1, 2),
                (3, 200, 400),
                (64, 64, 96),
                (100, 1000, 1500),
                (257, 255, 300),
                (1000, 1000, 4096),
            ] {
                for _ in 0..8 {
                    let a = sorted_unique(&mut seed, la, span);
                    let b = sorted_unique(&mut seed, lb, span);
                    let mut out = Vec::new();
                    merge2_into(level, &mut out, &a, &b);
                    assert_eq!(
                        out,
                        naive_intersect(&a, &b),
                        "{level:?} {la}x{lb} span {span}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge2_handles_extreme_values() {
        for level in runnable_levels() {
            let a = vec![0, 1, u64::MAX - 1, u64::MAX];
            let b = vec![1, 2, u64::MAX];
            let mut out = Vec::new();
            merge2_into(level, &mut out, &a, &b);
            assert_eq!(out, vec![1, u64::MAX], "{level:?}");
        }
    }

    #[test]
    fn linear_lub_matches_partition_point() {
        let mut seed = 0xDEADBEEF;
        for level in runnable_levels() {
            for len in [0usize, 1, 3, 4, 5, 15, 16, 17, 64, 100] {
                let v = sorted_unique(&mut seed, len, 1 << 40);
                for _ in 0..16 {
                    let target = xorshift(&mut seed) % (1 << 41);
                    let expected = v.partition_point(|&x| x < target);
                    assert_eq!(
                        linear_lub(level, &v, 0, v.len(), target),
                        expected,
                        "{level:?} len {len} target {target}"
                    );
                }
                // large targets land at the end; sign-flip must keep order
                assert_eq!(
                    linear_lub(level, &v, 0, v.len(), u64::MAX),
                    v.partition_point(|&x| x < u64::MAX)
                );
            }
        }
    }

    #[test]
    fn active_level_is_stable() {
        assert_eq!(active_level(), active_level());
    }
}
