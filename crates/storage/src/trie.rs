//! CSR-flattened prefix tries with seekable cursors — the access path required by
//! Leapfrog Triejoin (Veldhuizen 2014), the WCOJ algorithm that inspired Generic Join
//! in the paper's historical account (Section 1.2).
//!
//! A [`Trie`] stores a relation's tuples, reordered by a chosen attribute order, as
//! one sorted value array per level plus child-range offsets. A [`TrieCursor`]
//! implements the linear-iterator interface Leapfrog needs: `open`, `up`, `next`,
//! `seek` (least upper bound within the current sibling group), `key`, `at_end`.
//! `seek` uses galloping (exponential then binary) search so that a full leapfrog
//! intersection of `k` sorted sets costs `O(k · min_size · log(max/min))`.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::stats::WorkCounter;
use crate::Value;

/// One level of the trie: all node values at this depth (grouped by parent, each group
/// sorted), plus the start offset of each node's children in the next level.
#[derive(Debug, Clone)]
struct TrieLevel {
    /// Node values at this depth, concatenated parent group by parent group.
    values: Vec<Value>,
    /// `child_start[i]..child_start[i+1]` is the range of node `i`'s children in the
    /// next level's `values`. Present for every level; for the last level all ranges
    /// are empty.
    child_start: Vec<usize>,
}

/// A prefix trie over a relation in a fixed attribute order.
#[derive(Debug, Clone)]
pub struct Trie {
    attr_order: Vec<String>,
    levels: Vec<TrieLevel>,
    num_tuples: usize,
}

impl Trie {
    /// Build a trie for `rel` with attributes reordered to `attr_order` (a permutation
    /// of the relation's attributes).
    pub fn build(rel: &Relation, attr_order: &[&str]) -> Result<Self, StorageError> {
        let reordered = rel.reorder(attr_order)?;
        let arity = reordered.arity();
        let tuples = reordered.tuples();

        let mut levels: Vec<TrieLevel> = Vec::with_capacity(arity);
        // group_bounds[g] = (start, end) range of tuples forming sibling group g at the
        // current level; at level 0 there is a single group spanning all tuples.
        let mut group_bounds: Vec<(usize, usize)> = vec![(0, tuples.len())];

        for depth in 0..arity {
            let mut values = Vec::new();
            let mut next_groups = Vec::new();
            for &(start, end) in &group_bounds {
                let mut i = start;
                while i < end {
                    let v = tuples[i][depth];
                    let mut j = i + 1;
                    while j < end && tuples[j][depth] == v {
                        j += 1;
                    }
                    values.push(v);
                    next_groups.push((i, j));
                    i = j;
                }
            }
            // child_start for this level is derived from next_groups sizes once we know
            // how many distinct children each node has at depth+1 — we fill it in the
            // next iteration. Store the tuple ranges for now and convert below.
            levels.push(TrieLevel {
                values,
                child_start: Vec::new(),
            });
            group_bounds = next_groups;
            // After the last level the per-node tuple ranges are singleton leaves.
            if depth + 1 == arity {
                let n = levels[depth].values.len();
                levels[depth].child_start = vec![0; n + 1];
            }
        }

        // Second pass: compute child_start offsets. Node i at level d has as children
        // the distinct values at level d+1 whose parent group is i; since both levels
        // were produced by the same in-order traversal, children appear consecutively.
        for depth in 0..arity.saturating_sub(1) {
            let parent_count = levels[depth].values.len();
            let mut child_start = Vec::with_capacity(parent_count + 1);
            child_start.push(0usize);
            // Recompute grouping: walk the reordered tuples once per level pair.
            // Children of parent node i are the distinct (depth+1)-values within the
            // parent's tuple range. We re-derive the ranges the same way as above.
            // To avoid storing ranges across passes, rebuild them here.
            let ranges = Self::node_ranges(tuples, depth + 1);
            debug_assert_eq!(ranges.len(), levels[depth + 1].values.len());
            // Count how many children each parent has by matching parent ranges.
            let parent_ranges = Self::node_ranges(tuples, depth);
            debug_assert_eq!(parent_ranges.len(), parent_count);
            let mut ci = 0usize;
            for &(pstart, pend) in &parent_ranges {
                let mut count = 0usize;
                while ci < ranges.len() && ranges[ci].0 >= pstart && ranges[ci].1 <= pend {
                    count += 1;
                    ci += 1;
                }
                child_start.push(child_start.last().unwrap() + count);
            }
            debug_assert_eq!(*child_start.last().unwrap(), levels[depth + 1].values.len());
            levels[depth].child_start = child_start;
        }

        Ok(Trie {
            attr_order: attr_order.iter().map(|s| s.to_string()).collect(),
            levels,
            num_tuples: tuples.len(),
        })
    }

    /// Tuple ranges of the distinct-prefix nodes at `depth` (prefix length `depth+1`),
    /// in order.
    fn node_ranges(tuples: &[Vec<Value>], depth: usize) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < tuples.len() {
            let mut j = i + 1;
            while j < tuples.len() && tuples[j][..=depth] == tuples[i][..=depth] {
                j += 1;
            }
            ranges.push((i, j));
            i = j;
        }
        ranges
    }

    /// The attribute order of the trie.
    pub fn attr_order(&self) -> &[String] {
        &self.attr_order
    }

    /// Arity (number of levels).
    pub fn arity(&self) -> usize {
        self.attr_order.len()
    }

    /// Number of tuples in the underlying relation.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// Number of trie nodes at `depth` (distinct prefixes of length `depth + 1`).
    pub fn nodes_at(&self, depth: usize) -> usize {
        self.levels.get(depth).map_or(0, |l| l.values.len())
    }

    /// A cursor positioned at the root.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor {
            trie: self,
            stack: Vec::new(),
            counter: None,
        }
    }

    /// A cursor that records its seek/next work into `counter`.
    pub fn cursor_with_counter<'a>(&'a self, counter: &'a WorkCounter) -> TrieCursor<'a> {
        TrieCursor {
            trie: self,
            stack: Vec::new(),
            counter: Some(counter),
        }
    }
}

/// A cursor frame: position within the sibling group, whose exclusive upper bound is
/// `end` (the group's start is wherever the frame was opened).
#[derive(Debug, Clone, Copy)]
struct Frame {
    pos: usize,
    end: usize,
}

/// A seekable cursor over a [`Trie`], implementing the Leapfrog Triejoin iterator
/// interface.
#[derive(Debug, Clone)]
pub struct TrieCursor<'a> {
    trie: &'a Trie,
    stack: Vec<Frame>,
    counter: Option<&'a WorkCounter>,
}

impl<'a> TrieCursor<'a> {
    /// Current depth: number of levels that have been opened (0 = at root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Arity of the underlying trie (total number of levels).
    pub fn arity(&self) -> usize {
        self.trie.arity()
    }

    /// Descend into the first child of the current node (or into the first root-level
    /// value when at the root). Returns `false` without moving if there are no
    /// children (already at the deepest level, or the trie is empty).
    pub fn open(&mut self) -> bool {
        let next_level = self.stack.len();
        if next_level >= self.trie.levels.len() {
            return false;
        }
        let (begin, end) = match self.stack.last() {
            None => (0, self.trie.levels[0].values.len()),
            Some(frame) => {
                let cs = &self.trie.levels[next_level - 1].child_start;
                (cs[frame.pos], cs[frame.pos + 1])
            }
        };
        if begin == end {
            return false;
        }
        self.stack.push(Frame { pos: begin, end });
        true
    }

    /// Ascend one level. No-op at the root.
    pub fn up(&mut self) {
        self.stack.pop();
    }

    /// The value at the cursor's current position. Panics if the cursor is at the root
    /// or at the end of its sibling group.
    pub fn key(&self) -> Value {
        let frame = self.stack.last().expect("cursor is at the root");
        assert!(frame.pos < frame.end, "cursor is at end of its group");
        self.trie.levels[self.stack.len() - 1].values[frame.pos]
    }

    /// Whether the cursor has run past the last sibling at the current level.
    pub fn at_end(&self) -> bool {
        match self.stack.last() {
            None => true,
            Some(f) => f.pos >= f.end,
        }
    }

    /// Advance to the next sibling. Returns `false` if that moves past the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        if let Some(c) = self.counter {
            c.add_intersect_steps(1);
        }
        let frame = self.stack.last_mut().expect("cursor is at the root");
        if frame.pos < frame.end {
            frame.pos += 1;
        }
        frame.pos < frame.end
    }

    /// Seek to the least sibling with value `>= target` (galloping search). Returns
    /// `false` if no such sibling exists (the cursor is then `at_end`).
    pub fn seek(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values;
        if frame.pos >= frame.end {
            return false;
        }
        let (pos, probes) = crate::ops::gallop_lub(values, frame.pos, frame.end, target);
        if let Some(c) = self.counter {
            c.add_probes(probes);
        }
        frame.pos = pos;
        frame.pos < frame.end
    }

    /// Convenience: the values remaining in the current sibling group, from the
    /// cursor's position onward (used in tests and by simple engines).
    pub fn remaining(&self) -> &'a [Value] {
        match self.stack.last() {
            None => &[],
            Some(f) => &self.trie.levels[self.stack.len() - 1].values[f.pos..f.end],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![
                vec![1, 2, 10],
                vec![1, 2, 11],
                vec![1, 3, 10],
                vec![2, 2, 12],
                vec![4, 1, 1],
                vec![4, 1, 2],
            ],
        )
    }

    #[test]
    fn build_counts_nodes() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.num_tuples(), 6);
        assert_eq!(t.nodes_at(0), 3); // A in {1, 2, 4}
        assert_eq!(t.nodes_at(1), 4); // (1,2) (1,3) (2,2) (4,1)
        assert_eq!(t.nodes_at(2), 6); // all tuples distinct
        assert_eq!(
            t.attr_order(),
            &["A".to_string(), "B".to_string(), "C".to_string()]
        );
    }

    #[test]
    fn cursor_walks_first_level() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        assert!(c.at_end()); // root has no key
        assert!(c.open());
        assert_eq!(c.depth(), 1);
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(c.next());
        assert_eq!(c.key(), 4);
        assert!(!c.next());
        assert!(c.at_end());
        c.up();
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn cursor_descends_into_correct_children() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // move to A = 4
        assert!(c.seek(4));
        assert_eq!(c.key(), 4);
        assert!(c.open());
        assert_eq!(c.key(), 1); // B values under A=4: {1}
        assert!(c.open());
        assert_eq!(c.remaining(), &[1, 2]); // C values under (4,1)
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(!c.next());
    }

    #[test]
    fn seek_is_least_upper_bound() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        assert!(c.seek(2));
        assert_eq!(c.key(), 2);
        assert!(c.seek(3));
        assert_eq!(c.key(), 4); // 3 absent, lub is 4
        assert!(!c.seek(5)); // nothing >= 5
        assert!(c.at_end());
    }

    #[test]
    fn seek_within_child_group_does_not_escape() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // A = 1, children B in {2, 3}
        assert_eq!(c.key(), 1);
        c.open();
        assert!(c.seek(3));
        assert_eq!(c.key(), 3);
        assert!(!c.seek(4)); // 4 exists at level B only under A=2/A=4 groups, not here
    }

    #[test]
    fn reordered_trie() {
        let t = Trie::build(&rel(), &["C", "B", "A"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // C values overall: 1, 2, 10, 11, 12
        assert_eq!(c.remaining(), &[1, 2, 10, 11, 12]);
        assert!(c.seek(10));
        c.open();
        assert_eq!(c.remaining(), &[2, 3]); // B values with C=10
    }

    #[test]
    fn empty_relation_trie() {
        let t = Trie::build(&Relation::empty(Schema::new(&["A", "B"])), &["A", "B"]).unwrap();
        let mut c = t.cursor();
        assert!(!c.open());
        assert_eq!(t.nodes_at(0), 0);
        assert_eq!(t.num_tuples(), 0);
    }

    #[test]
    fn unary_relation_trie() {
        let r = Relation::from_rows(Schema::new(&["A"]), vec![vec![5], vec![2], vec![9]]);
        let t = Trie::build(&r, &["A"]).unwrap();
        let mut c = t.cursor();
        assert!(c.open());
        assert_eq!(c.remaining(), &[2, 5, 9]);
        assert!(!c.open()); // no deeper level
        assert!(c.seek(6));
        assert_eq!(c.key(), 9);
    }

    #[test]
    fn counter_records_probe_work() {
        let r = Relation::from_rows(Schema::new(&["A"]), (0..1000).map(|i| vec![i]).collect());
        let t = Trie::build(&r, &["A"]).unwrap();
        let w = WorkCounter::new();
        let mut c = t.cursor_with_counter(&w);
        c.open();
        c.seek(900);
        c.next();
        assert!(w.probes() > 0);
        assert!(w.intersect_steps() > 0);
    }

    #[test]
    fn bad_attr_order_rejected() {
        assert!(Trie::build(&rel(), &["A", "B"]).is_err());
        assert!(Trie::build(&rel(), &["A", "B", "Z"]).is_err());
    }

    #[test]
    fn trie_enumerates_all_tuples() {
        // depth-first walk of the trie must reproduce the sorted tuple set
        let r = rel();
        let t = Trie::build(&r, &["A", "B", "C"]).unwrap();
        let mut out = Vec::new();
        let mut c = t.cursor();
        fn walk(
            c: &mut TrieCursor<'_>,
            arity: usize,
            prefix: &mut Vec<Value>,
            out: &mut Vec<Vec<Value>>,
        ) {
            if !c.open() {
                return;
            }
            loop {
                if c.at_end() {
                    break;
                }
                prefix.push(c.key());
                if prefix.len() == arity {
                    out.push(prefix.clone());
                } else {
                    walk(c, arity, prefix, out);
                }
                prefix.pop();
                if !c.next() {
                    break;
                }
            }
            c.up();
        }
        walk(&mut c, 3, &mut Vec::new(), &mut out);
        assert_eq!(out, r.tuples());
    }
}
