//! CSR-flattened prefix tries with seekable cursors — the access path required by
//! Leapfrog Triejoin (Veldhuizen 2014), the WCOJ algorithm that inspired Generic Join
//! in the paper's historical account (Section 1.2).
//!
//! A [`Trie`] stores a relation's tuples, reordered by a chosen attribute order, as
//! one sorted value array per level plus child-range offsets. Construction is a
//! **fused pass over the relation's columns**: one argsort of row indices (skipped
//! entirely when the requested order is the relation's native order), then a single
//! scan that emits every level's values and child offsets simultaneously — no row
//! materialization, no per-level re-grouping.
//!
//! A [`TrieCursor`] implements the linear-iterator interface Leapfrog needs: `open`,
//! `up`, `next`, `seek` (least upper bound within the current sibling group), `key`,
//! `at_end`. `seek` uses galloping (exponential then binary) search so that a full
//! leapfrog intersection of `k` sorted sets costs `O(k · min_size · log(max/min))`.
//! Cursors are `Send + Clone` — they borrow the (immutable, `Sync`) trie and own
//! their stack plus private [`CursorWork`] tallies, so independent parallel workers
//! can each hold their own cursor over one shared trie.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::stats::CursorWork;
use crate::Value;

/// One level of the trie: all node values at this depth (grouped by parent, each group
/// sorted), plus the start offset of each node's children in the next level.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TrieLevel {
    /// Node values at this depth, concatenated parent group by parent group.
    values: Vec<Value>,
    /// `child_start[i]..child_start[i+1]` is the range of node `i`'s children in the
    /// next level's `values`. Empty for the deepest level (never dereferenced there).
    child_start: Vec<usize>,
}

/// A prefix trie over a relation in a fixed attribute order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trie {
    attr_order: Vec<String>,
    levels: Vec<TrieLevel>,
    num_tuples: usize,
}

/// Validate that `attr_order` is a permutation of `rel`'s attributes and return the
/// column position of each ordered attribute. Shared with [`crate::PrefixIndex`].
pub(crate) fn order_positions(
    rel: &Relation,
    attr_order: &[&str],
) -> Result<Vec<usize>, StorageError> {
    if attr_order.len() != rel.arity() {
        return Err(StorageError::ArityMismatch {
            expected: rel.arity(),
            found: attr_order.len(),
        });
    }
    let mut positions = Vec::with_capacity(attr_order.len());
    let mut seen = vec![false; rel.arity()];
    for attr in attr_order {
        let p = rel.schema().require(attr)?;
        if seen[p] {
            return Err(StorageError::DuplicateAttribute(attr.to_string()));
        }
        seen[p] = true;
        positions.push(p);
    }
    Ok(positions)
}

/// Validate that `positions` is a permutation of `0..rel.arity()` and synthesize the
/// attribute names of that order from the relation's stored schema. The positional
/// twin of [`order_positions`], used by the cache-keyed builds
/// ([`Trie::build_positions`], [`crate::PrefixIndex::build_positions`]) where atom
/// variables bind to stored columns positionally.
pub(crate) fn positions_order(
    rel: &Relation,
    positions: &[usize],
) -> Result<Vec<String>, StorageError> {
    if positions.len() != rel.arity() {
        return Err(StorageError::ArityMismatch {
            expected: rel.arity(),
            found: positions.len(),
        });
    }
    let mut seen = vec![false; rel.arity()];
    for &p in positions {
        if p >= rel.arity() || seen[p] {
            return Err(StorageError::DuplicateAttribute(format!("column {p}")));
        }
        seen[p] = true;
    }
    Ok(positions
        .iter()
        .map(|&p| rel.schema().attrs()[p].clone())
        .collect())
}

/// Argsort of `rel`'s rows by the permuted columns, or `None` when the permutation
/// is the identity (the relation is already sorted in that order). Rows of a
/// full-attribute permutation are distinct, so `sort_perm`'s index tie-break never
/// fires.
pub(crate) fn order_perm(rel: &Relation, positions: &[usize]) -> Option<Vec<usize>> {
    if positions.iter().enumerate().all(|(i, &p)| i == p) {
        return None;
    }
    Some(rel.sort_perm(positions))
}

/// The shared fused-build scan: visit `rel`'s rows in the order of the permuted
/// columns `positions`, calling `visit(row, depth)` where `depth` is the first
/// position (in the permuted order) at which the row differs from its predecessor
/// (0 for the first row). Both [`Trie::build`] and [`crate::PrefixIndex::build`]
/// drive their single-pass construction off this boundary stream.
pub(crate) fn fused_scan(rel: &Relation, positions: &[usize], mut visit: impl FnMut(usize, usize)) {
    let arity = positions.len();
    let perm = order_perm(rel, positions);
    let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();
    let mut prev: Option<usize> = None;
    for idx in 0..rel.len() {
        let r = perm.as_ref().map_or(idx, |p| p[idx]);
        let d = match prev {
            None => 0,
            Some(pr) => {
                let mut d = 0;
                while d < arity && cols[d][r] == cols[d][pr] {
                    d += 1;
                }
                d
            }
        };
        debug_assert!(d < arity, "relations are deduplicated");
        visit(r, d);
        prev = Some(r);
    }
}

/// Relations below this many rows build serially even when worker threads are
/// requested: the scoped-thread spawn cost would exceed the build itself.
pub(crate) const PAR_BUILD_MIN: usize = 4096;

/// [`order_perm`] with the argsort spread across `threads` scoped workers
/// ([`Relation::sort_perm_threads`]); bit-identical to the serial argsort.
pub(crate) fn order_perm_threads(
    rel: &Relation,
    positions: &[usize],
    threads: usize,
) -> Option<Vec<usize>> {
    if positions.iter().enumerate().all(|(i, &p)| i == p) {
        return None;
    }
    Some(rel.sort_perm_threads(positions, threads))
}

/// The level-boundary stream of [`fused_scan`] as data: `bounds[idx]` is the first
/// depth at which sorted row `idx` differs from row `idx - 1` (0 for row 0).
/// Computed across `threads` scoped workers — each chunk's boundaries depend only
/// on the rows at its edges, so the partition is embarrassingly parallel.
pub(crate) fn boundary_depths(
    rel: &Relation,
    positions: &[usize],
    perm: Option<&[usize]>,
    threads: usize,
) -> Vec<usize> {
    let arity = positions.len();
    let n = rel.len();
    let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();
    let mut bounds = vec![0usize; n];
    let diff = |idx: usize| -> usize {
        let r = perm.map_or(idx, |p| p[idx]);
        let pr = perm.map_or(idx - 1, |p| p[idx - 1]);
        let mut d = 0;
        while d < arity && cols[d][r] == cols[d][pr] {
            d += 1;
        }
        debug_assert!(d < arity, "relations are deduplicated");
        d
    };
    if n == 0 {
        return bounds;
    }
    if threads <= 1 || n < PAR_BUILD_MIN {
        for (idx, b) in bounds.iter_mut().enumerate().skip(1) {
            *b = diff(idx);
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let diff = &diff;
            // skip row 0 (boundary 0 by definition), then hand out chunks
            let mut rest: &mut [usize] = &mut bounds[1..];
            let mut start = 1usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let begin = start;
                scope.spawn(move || {
                    for (off, b) in head.iter_mut().enumerate() {
                        *b = diff(begin + off);
                    }
                });
                rest = tail;
                start += take;
            }
        });
    }
    bounds
}

impl Trie {
    /// Build a trie for `rel` with attributes reordered to `attr_order` (a permutation
    /// of the relation's attributes).
    ///
    /// Single fused pass: argsort the row indices by the permuted columns (skipped
    /// when the order is native), then scan once, pushing a node at depth `d`
    /// whenever the current row first differs from the previous row at depth `≤ d`.
    pub fn build(rel: &Relation, attr_order: &[&str]) -> Result<Self, StorageError> {
        let positions = order_positions(rel, attr_order)?;
        Ok(Self::build_ordered(
            rel,
            &positions,
            attr_order.iter().map(|s| s.to_string()).collect(),
        ))
    }

    /// [`Trie::build`] with the order given as **column positions** (a permutation of
    /// `0..arity`, names synthesized from the stored schema) — the entry used by the
    /// execution layer's access-structure cache, whose keys are positional so that
    /// per-query variable names never reach (or fragment) the cache.
    pub fn build_positions(rel: &Relation, positions: &[usize]) -> Result<Self, StorageError> {
        let attr_order = positions_order(rel, positions)?;
        Ok(Self::build_ordered(rel, positions, attr_order))
    }

    fn build_ordered(rel: &Relation, positions: &[usize], attr_order: Vec<String>) -> Self {
        let arity = rel.arity();
        let n = rel.len();
        let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();

        let mut values: Vec<Vec<Value>> = vec![Vec::new(); arity];
        let mut child_start: Vec<Vec<usize>> = vec![Vec::new(); arity];
        fused_scan(rel, positions, |r, d| {
            // the row starts a new node at every depth >= d
            for (depth, col) in cols.iter().enumerate().skip(d) {
                if depth + 1 < arity {
                    child_start[depth].push(values[depth + 1].len());
                }
                values[depth].push(col[r]);
            }
        });
        // closing sentinels: node i's children end where node i+1's begin
        for depth in 0..arity.saturating_sub(1) {
            child_start[depth].push(values[depth + 1].len());
        }

        let levels = values
            .into_iter()
            .zip(child_start)
            .map(|(values, child_start)| TrieLevel {
                values,
                child_start,
            })
            .collect();
        Trie {
            attr_order,
            levels,
            num_tuples: n,
        }
    }

    /// [`Trie::build`] with the fused argsort-and-scan pass partitioned across
    /// `threads` scoped workers.
    ///
    /// Three parallel stages, each bit-identical to its serial counterpart:
    /// the argsort runs as sorted runs + parallel merges
    /// ([`Relation::sort_perm_threads`]), the level-boundary stream is chunked
    /// (`boundary_depths`), and the level arrays are filled through
    /// exclusive per-chunk output slices whose offsets come from a prefix sum of
    /// per-chunk node counts — so the result is guaranteed equal to
    /// [`Trie::build`] for every thread count (property-tested for
    /// threads ∈ {1, 2, 4, 8}). Small relations and `threads <= 1` fall back to
    /// the serial build.
    pub fn build_parallel(
        rel: &Relation,
        attr_order: &[&str],
        threads: usize,
    ) -> Result<Self, StorageError> {
        let positions = order_positions(rel, attr_order)?;
        Ok(Self::build_parallel_ordered(
            rel,
            &positions,
            attr_order.iter().map(|s| s.to_string()).collect(),
            threads,
        ))
    }

    /// [`Trie::build_positions`] with the parallel fused pass of
    /// [`Trie::build_parallel`]; bit-identical for every thread count.
    pub fn build_positions_parallel(
        rel: &Relation,
        positions: &[usize],
        threads: usize,
    ) -> Result<Self, StorageError> {
        let attr_order = positions_order(rel, positions)?;
        Ok(Self::build_parallel_ordered(
            rel, positions, attr_order, threads,
        ))
    }

    fn build_parallel_ordered(
        rel: &Relation,
        positions: &[usize],
        attr_order: Vec<String>,
        threads: usize,
    ) -> Self {
        if threads <= 1 || rel.len() < PAR_BUILD_MIN {
            return Self::build_ordered(rel, positions, attr_order);
        }
        let arity = rel.arity();
        let n = rel.len();
        let perm = order_perm_threads(rel, positions, threads);
        let bounds = boundary_depths(rel, positions, perm.as_deref(), threads);
        let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();

        // per-chunk node counts per depth (a row with boundary b creates one node
        // at every depth >= b), then exclusive prefix sums -> chunk output offsets
        let chunk = n.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
        let counts: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let bounds = &bounds;
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let range = range.clone();
                    scope.spawn(move || {
                        let mut c = vec![0usize; arity];
                        for idx in range {
                            for slot in c.iter_mut().skip(bounds[idx]) {
                                *slot += 1;
                            }
                        }
                        c
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("count worker"))
                .collect()
        });
        let mut offsets: Vec<Vec<usize>> = Vec::with_capacity(counts.len());
        let mut totals = vec![0usize; arity];
        for c in &counts {
            offsets.push(totals.clone());
            for (t, &k) in totals.iter_mut().zip(c) {
                *t += k;
            }
        }

        // exact-size level arrays, handed to workers as exclusive per-chunk slices
        let mut values: Vec<Vec<Value>> = totals.iter().map(|&t| vec![0; t]).collect();
        let mut child_start: Vec<Vec<usize>> = (0..arity)
            .map(|d| {
                if d + 1 < arity {
                    vec![0usize; totals[d] + 1] // + 1 for the closing sentinel
                } else {
                    Vec::new()
                }
            })
            .collect();
        {
            let mut val_rem: Vec<&mut [Value]> =
                values.iter_mut().map(|v| v.as_mut_slice()).collect();
            let mut cs_rem: Vec<&mut [usize]> =
                child_start.iter_mut().map(|v| v.as_mut_slice()).collect();
            std::thread::scope(|scope| {
                let bounds = &bounds;
                let cols = &cols;
                let perm = perm.as_deref();
                for (c, range) in ranges.iter().enumerate() {
                    let mut vs: Vec<&mut [Value]> = Vec::with_capacity(arity);
                    let mut cs: Vec<&mut [usize]> = Vec::with_capacity(arity);
                    for d in 0..arity {
                        let (head, tail) =
                            std::mem::take(&mut val_rem[d]).split_at_mut(counts[c][d]);
                        vs.push(head);
                        val_rem[d] = tail;
                        if d + 1 < arity {
                            let (head, tail) =
                                std::mem::take(&mut cs_rem[d]).split_at_mut(counts[c][d]);
                            cs.push(head);
                            cs_rem[d] = tail;
                        }
                    }
                    let range = range.clone();
                    let offs = offsets[c].clone();
                    scope.spawn(move || {
                        let mut vs = vs;
                        let mut cs = cs;
                        let mut local = vec![0usize; arity];
                        for idx in range {
                            let r = perm.map_or(idx, |p| p[idx]);
                            for depth in bounds[idx]..arity {
                                if depth + 1 < arity {
                                    // first child of this node = depth+1 nodes
                                    // emitted so far, globally
                                    cs[depth][local[depth]] = offs[depth + 1] + local[depth + 1];
                                }
                                vs[depth][local[depth]] = cols[depth][r];
                                local[depth] += 1;
                            }
                        }
                    });
                }
            });
            // closing sentinels: node i's children end where node i + 1's begin
            for d in 0..arity.saturating_sub(1) {
                debug_assert_eq!(cs_rem[d].len(), 1);
                cs_rem[d][0] = totals[d + 1];
            }
        }

        let levels = values
            .into_iter()
            .zip(child_start)
            .map(|(values, child_start)| TrieLevel {
                values,
                child_start,
            })
            .collect();
        Trie {
            attr_order,
            levels,
            num_tuples: n,
        }
    }

    /// The attribute order of the trie.
    pub fn attr_order(&self) -> &[String] {
        &self.attr_order
    }

    /// Approximate heap footprint in bytes (level value and offset arrays plus
    /// order metadata) — the byte accounting behind the access-structure
    /// cache's budget.
    pub fn heap_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.values.len() * std::mem::size_of::<Value>()
                    + l.child_start.len() * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + self.attr_order.iter().map(|s| s.len()).sum::<usize>()
    }

    /// Arity (number of levels).
    pub fn arity(&self) -> usize {
        self.attr_order.len()
    }

    /// Number of tuples in the underlying relation.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// Number of trie nodes at `depth` (distinct prefixes of length `depth + 1`).
    pub fn nodes_at(&self, depth: usize) -> usize {
        self.levels.get(depth).map_or(0, |l| l.values.len())
    }

    /// The sorted distinct values of the first attribute (the root sibling group) —
    /// what a cursor enumerates after its first `open`. Used by the execution layer
    /// to compute the first join variable's extension set up front.
    pub fn root_values(&self) -> &[Value] {
        self.levels.first().map_or(&[], |l| l.values.as_slice())
    }

    /// A cursor positioned at the root.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor {
            trie: self,
            stack: Vec::new(),
            work: CursorWork::default(),
            simd: crate::simd::active_level(),
            seek_linear_max: crate::ops::LINEAR_SEEK_MAX,
        }
    }
}

/// A cursor frame: the sibling group `[start, end)` at this level and the position
/// within it.
#[derive(Debug, Clone, Copy)]
struct Frame {
    start: usize,
    pos: usize,
    end: usize,
}

/// A seekable cursor over a [`Trie`], implementing the Leapfrog Triejoin iterator
/// interface. `Send + Clone`: it borrows the shared trie and owns its stack and
/// work tallies.
#[derive(Debug, Clone)]
pub struct TrieCursor<'a> {
    trie: &'a Trie,
    stack: Vec<Frame>,
    work: CursorWork,
    simd: crate::simd::SimdLevel,
    seek_linear_max: usize,
}

impl<'a> TrieCursor<'a> {
    /// Current depth: number of levels that have been opened (0 = at root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Arity of the underlying trie (total number of levels).
    pub fn arity(&self) -> usize {
        self.trie.arity()
    }

    /// Descend into the first child of the current node (or into the first root-level
    /// value when at the root). Returns `false` without moving if there are no
    /// children (already at the deepest level, or the trie is empty).
    pub fn open(&mut self) -> bool {
        let next_level = self.stack.len();
        if next_level >= self.trie.levels.len() {
            return false;
        }
        let (begin, end) = match self.stack.last() {
            None => (0, self.trie.levels[0].values.len()),
            Some(frame) => {
                let cs = &self.trie.levels[next_level - 1].child_start;
                (cs[frame.pos], cs[frame.pos + 1])
            }
        };
        if begin == end {
            return false;
        }
        self.stack.push(Frame {
            start: begin,
            pos: begin,
            end,
        });
        true
    }

    /// Ascend one level. No-op at the root.
    pub fn up(&mut self) {
        self.stack.pop();
    }

    /// The value at the cursor's current position. Panics if the cursor is at the root
    /// or at the end of its sibling group.
    pub fn key(&self) -> Value {
        let frame = self.stack.last().expect("cursor is at the root");
        assert!(frame.pos < frame.end, "cursor is at end of its group");
        self.trie.levels[self.stack.len() - 1].values[frame.pos]
    }

    /// Whether the cursor has run past the last sibling at the current level.
    pub fn at_end(&self) -> bool {
        match self.stack.last() {
            None => true,
            Some(f) => f.pos >= f.end,
        }
    }

    /// Advance to the next sibling. Returns `false` if that moves past the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        self.work.intersect_steps += 1;
        let frame = self.stack.last_mut().expect("cursor is at the root");
        if frame.pos < frame.end {
            frame.pos += 1;
        }
        frame.pos < frame.end
    }

    /// Seek to the least sibling with value `>= target` (adaptive: linear scan for
    /// short groups, galloping search otherwise). Returns `false` if no such
    /// sibling exists (the cursor is then `at_end`).
    pub fn seek(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values;
        if frame.pos >= frame.end {
            return false;
        }
        let (pos, probes, cmps) = crate::ops::seek_lub_cal(
            self.simd,
            values,
            frame.pos,
            frame.end,
            target,
            self.seek_linear_max,
        );
        self.work.probes += probes;
        self.work.comparisons += cmps;
        frame.pos = pos;
        frame.pos < frame.end
    }

    /// Set the linear-scan-vs-gallop cutoff used by [`TrieCursor::seek`] and
    /// [`TrieCursor::advance_to`] (see [`crate::tune::KernelCalibration`]).
    pub fn set_seek_calibration(&mut self, linear_max: usize) {
        self.seek_linear_max = linear_max;
    }

    /// Position at the sibling with value exactly `target`, searching the *whole*
    /// group (may move backward). Uncounted: used by the execution layer to
    /// re-position at keys whose discovery cost was already accounted elsewhere
    /// (e.g. the first-variable extension set shared across parallel workers).
    pub fn reposition(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values[frame.start..frame.end];
        match values.binary_search(&target) {
            Ok(i) => {
                frame.pos = frame.start + i;
                true
            }
            Err(i) => {
                frame.pos = frame.start + i;
                false
            }
        }
    }

    /// Forward-only, uncounted positioning at exactly `target`, which must be
    /// `>=` the current key: the fast path for re-positioning at
    /// kernel-discovered keys visited in ascending order (their search cost was
    /// already accounted by the intersection kernel). Returns whether the value
    /// is present.
    pub fn advance_to(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values;
        if frame.pos >= frame.end {
            return false;
        }
        if values[frame.pos] >= target {
            return values[frame.pos] == target;
        }
        let pos = crate::ops::advance_lub(
            self.simd,
            values,
            frame.pos,
            frame.end,
            target,
            self.seek_linear_max,
        );
        frame.pos = pos;
        pos < frame.end && values[pos] == target
    }

    /// Convenience: the values remaining in the current sibling group, from the
    /// cursor's position onward.
    pub fn remaining(&self) -> &'a [Value] {
        match self.stack.last() {
            None => &[],
            Some(f) => &self.trie.levels[self.stack.len() - 1].values[f.pos..f.end],
        }
    }

    /// Drain the cursor's private work tallies (resetting them to zero).
    pub fn take_work(&mut self) -> CursorWork {
        std::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![
                vec![1, 2, 10],
                vec![1, 2, 11],
                vec![1, 3, 10],
                vec![2, 2, 12],
                vec![4, 1, 1],
                vec![4, 1, 2],
            ],
        )
    }

    #[test]
    fn positional_build_matches_named_build() {
        let r = rel();
        let by_name = Trie::build(&r, &["C", "A", "B"]).unwrap();
        let by_pos = Trie::build_positions(&r, &[2, 0, 1]).unwrap();
        assert_eq!(by_pos, by_name);
        assert_eq!(
            by_pos.attr_order(),
            &["C".to_string(), "A".to_string(), "B".to_string()]
        );
        assert!(by_pos.heap_bytes() > 0);
        let par = Trie::build_positions_parallel(&r, &[2, 0, 1], 4).unwrap();
        assert_eq!(par, by_name);
        assert!(Trie::build_positions(&r, &[0, 1]).is_err());
        assert!(Trie::build_positions(&r, &[0, 1, 1]).is_err());
        assert!(Trie::build_positions(&r, &[0, 1, 3]).is_err());
    }

    #[test]
    fn build_counts_nodes() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.num_tuples(), 6);
        assert_eq!(t.nodes_at(0), 3); // A in {1, 2, 4}
        assert_eq!(t.nodes_at(1), 4); // (1,2) (1,3) (2,2) (4,1)
        assert_eq!(t.nodes_at(2), 6); // all tuples distinct
        assert_eq!(t.root_values(), &[1, 2, 4]);
        assert_eq!(
            t.attr_order(),
            &["A".to_string(), "B".to_string(), "C".to_string()]
        );
    }

    #[test]
    fn cursor_walks_first_level() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        assert!(c.at_end()); // root has no key
        assert!(c.open());
        assert_eq!(c.depth(), 1);
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(c.next());
        assert_eq!(c.key(), 4);
        assert!(!c.next());
        assert!(c.at_end());
        c.up();
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn cursor_descends_into_correct_children() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // move to A = 4
        assert!(c.seek(4));
        assert_eq!(c.key(), 4);
        assert!(c.open());
        assert_eq!(c.key(), 1); // B values under A=4: {1}
        assert!(c.open());
        assert_eq!(c.remaining(), &[1, 2]); // C values under (4,1)
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(!c.next());
    }

    #[test]
    fn seek_is_least_upper_bound() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        assert!(c.seek(2));
        assert_eq!(c.key(), 2);
        assert!(c.seek(3));
        assert_eq!(c.key(), 4); // 3 absent, lub is 4
        assert!(!c.seek(5)); // nothing >= 5
        assert!(c.at_end());
    }

    #[test]
    fn seek_within_child_group_does_not_escape() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // A = 1, children B in {2, 3}
        assert_eq!(c.key(), 1);
        c.open();
        assert!(c.seek(3));
        assert_eq!(c.key(), 3);
        assert!(!c.seek(4)); // 4 exists at level B only under A=2/A=4 groups, not here
    }

    #[test]
    fn reposition_is_bidirectional_within_group() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        assert!(c.seek(4));
        assert_eq!(c.key(), 4);
        // reposition can move backward, unlike seek
        assert!(c.reposition(1));
        assert_eq!(c.key(), 1);
        assert!(c.reposition(4));
        assert_eq!(c.key(), 4);
        assert!(!c.reposition(3)); // absent
                                   // and it is uncounted work
        assert!(!c.take_work().is_zero()); // from the earlier seek only
        assert!(c.reposition(2));
        assert_eq!(c.take_work(), CursorWork::default());
    }

    #[test]
    fn reordered_trie() {
        let t = Trie::build(&rel(), &["C", "B", "A"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // C values overall: 1, 2, 10, 11, 12
        assert_eq!(c.remaining(), &[1, 2, 10, 11, 12]);
        assert!(c.seek(10));
        c.open();
        assert_eq!(c.remaining(), &[2, 3]); // B values with C=10
    }

    #[test]
    fn reordered_trie_enumerates_reordered_tuples() {
        // the fused argsort build must agree with reorder-then-build
        let r = rel();
        for order in [
            ["A", "B", "C"],
            ["A", "C", "B"],
            ["B", "A", "C"],
            ["B", "C", "A"],
            ["C", "A", "B"],
            ["C", "B", "A"],
        ] {
            let t = Trie::build(&r, &order).unwrap();
            let reordered = r.reorder(&order).unwrap();
            let mut out = Vec::new();
            let mut c = t.cursor();
            walk(&mut c, 3, &mut Vec::new(), &mut out);
            assert_eq!(out, reordered.rows(), "order {order:?}");
        }
    }

    #[test]
    fn empty_relation_trie() {
        let t = Trie::build(&Relation::empty(Schema::new(&["A", "B"])), &["A", "B"]).unwrap();
        let mut c = t.cursor();
        assert!(!c.open());
        assert_eq!(t.nodes_at(0), 0);
        assert_eq!(t.num_tuples(), 0);
        assert!(t.root_values().is_empty());
    }

    #[test]
    fn unary_relation_trie() {
        let r = Relation::from_rows(Schema::new(&["A"]), vec![vec![5], vec![2], vec![9]]);
        let t = Trie::build(&r, &["A"]).unwrap();
        let mut c = t.cursor();
        assert!(c.open());
        assert_eq!(c.remaining(), &[2, 5, 9]);
        assert!(!c.open()); // no deeper level
        assert!(c.seek(6));
        assert_eq!(c.key(), 9);
    }

    #[test]
    fn cursor_records_work_privately() {
        let r = Relation::from_rows(Schema::new(&["A"]), (0..1000).map(|i| vec![i]).collect());
        let t = Trie::build(&r, &["A"]).unwrap();
        let mut c = t.cursor();
        c.open();
        c.seek(900);
        c.next();
        let w = c.take_work();
        assert!(w.probes > 0);
        assert!(w.intersect_steps > 0);
        // take_work drains
        assert!(c.take_work().is_zero());
    }

    #[test]
    fn cursors_are_send_and_clone() {
        fn assert_send_clone<T: Send + Clone>() {}
        fn assert_sync<T: Sync>() {}
        assert_send_clone::<TrieCursor<'_>>();
        assert_sync::<Trie>();
        // a clone is an independent cursor with its own stack
        let r = rel();
        let t = Trie::build(&r, &["A", "B", "C"]).unwrap();
        let mut a = t.cursor();
        a.open();
        a.seek(2);
        let mut b = a.clone();
        b.next();
        assert_eq!(a.key(), 2);
        assert_eq!(b.key(), 4);
    }

    #[test]
    fn bad_attr_order_rejected() {
        assert!(Trie::build(&rel(), &["A", "B"]).is_err());
        assert!(Trie::build(&rel(), &["A", "B", "Z"]).is_err());
        assert!(Trie::build(&rel(), &["A", "B", "B"]).is_err());
    }

    fn walk(
        c: &mut TrieCursor<'_>,
        arity: usize,
        prefix: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if !c.open() {
            return;
        }
        loop {
            if c.at_end() {
                break;
            }
            prefix.push(c.key());
            if prefix.len() == arity {
                out.push(prefix.clone());
            } else {
                walk(c, arity, prefix, out);
            }
            prefix.pop();
            if !c.next() {
                break;
            }
        }
        c.up();
    }

    #[test]
    fn trie_enumerates_all_tuples() {
        // depth-first walk of the trie must reproduce the sorted tuple set
        let r = rel();
        let t = Trie::build(&r, &["A", "B", "C"]).unwrap();
        let mut out = Vec::new();
        let mut c = t.cursor();
        walk(&mut c, 3, &mut Vec::new(), &mut out);
        assert_eq!(out, r.rows());
    }
}
