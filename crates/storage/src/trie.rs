//! CSR-flattened prefix tries with seekable cursors — the access path required by
//! Leapfrog Triejoin (Veldhuizen 2014), the WCOJ algorithm that inspired Generic Join
//! in the paper's historical account (Section 1.2).
//!
//! A [`Trie`] stores a relation's tuples, reordered by a chosen attribute order, as
//! one sorted value array per level plus child-range offsets. Construction is a
//! **fused pass over the relation's columns**: one argsort of row indices (skipped
//! entirely when the requested order is the relation's native order), then a single
//! scan that emits every level's values and child offsets simultaneously — no row
//! materialization, no per-level re-grouping.
//!
//! A [`TrieCursor`] implements the linear-iterator interface Leapfrog needs: `open`,
//! `up`, `next`, `seek` (least upper bound within the current sibling group), `key`,
//! `at_end`. `seek` uses galloping (exponential then binary) search so that a full
//! leapfrog intersection of `k` sorted sets costs `O(k · min_size · log(max/min))`.
//! Cursors are `Send + Clone` — they borrow the (immutable, `Sync`) trie and own
//! their stack plus private [`CursorWork`] tallies, so independent parallel workers
//! can each hold their own cursor over one shared trie.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::stats::CursorWork;
use crate::Value;

/// One level of the trie: all node values at this depth (grouped by parent, each group
/// sorted), plus the start offset of each node's children in the next level.
#[derive(Debug, Clone)]
struct TrieLevel {
    /// Node values at this depth, concatenated parent group by parent group.
    values: Vec<Value>,
    /// `child_start[i]..child_start[i+1]` is the range of node `i`'s children in the
    /// next level's `values`. Empty for the deepest level (never dereferenced there).
    child_start: Vec<usize>,
}

/// A prefix trie over a relation in a fixed attribute order.
#[derive(Debug, Clone)]
pub struct Trie {
    attr_order: Vec<String>,
    levels: Vec<TrieLevel>,
    num_tuples: usize,
}

/// Validate that `attr_order` is a permutation of `rel`'s attributes and return the
/// column position of each ordered attribute. Shared with [`crate::PrefixIndex`].
pub(crate) fn order_positions(
    rel: &Relation,
    attr_order: &[&str],
) -> Result<Vec<usize>, StorageError> {
    if attr_order.len() != rel.arity() {
        return Err(StorageError::ArityMismatch {
            expected: rel.arity(),
            found: attr_order.len(),
        });
    }
    let mut positions = Vec::with_capacity(attr_order.len());
    let mut seen = vec![false; rel.arity()];
    for attr in attr_order {
        let p = rel.schema().require(attr)?;
        if seen[p] {
            return Err(StorageError::DuplicateAttribute(attr.to_string()));
        }
        seen[p] = true;
        positions.push(p);
    }
    Ok(positions)
}

/// Argsort of `rel`'s rows by the permuted columns, or `None` when the permutation
/// is the identity (the relation is already sorted in that order). Rows of a
/// full-attribute permutation are distinct, so `sort_perm`'s index tie-break never
/// fires.
pub(crate) fn order_perm(rel: &Relation, positions: &[usize]) -> Option<Vec<usize>> {
    if positions.iter().enumerate().all(|(i, &p)| i == p) {
        return None;
    }
    Some(rel.sort_perm(positions))
}

/// The shared fused-build scan: visit `rel`'s rows in the order of the permuted
/// columns `positions`, calling `visit(row, depth)` where `depth` is the first
/// position (in the permuted order) at which the row differs from its predecessor
/// (0 for the first row). Both [`Trie::build`] and [`crate::PrefixIndex::build`]
/// drive their single-pass construction off this boundary stream.
pub(crate) fn fused_scan(rel: &Relation, positions: &[usize], mut visit: impl FnMut(usize, usize)) {
    let arity = positions.len();
    let perm = order_perm(rel, positions);
    let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();
    let mut prev: Option<usize> = None;
    for idx in 0..rel.len() {
        let r = perm.as_ref().map_or(idx, |p| p[idx]);
        let d = match prev {
            None => 0,
            Some(pr) => {
                let mut d = 0;
                while d < arity && cols[d][r] == cols[d][pr] {
                    d += 1;
                }
                d
            }
        };
        debug_assert!(d < arity, "relations are deduplicated");
        visit(r, d);
        prev = Some(r);
    }
}

impl Trie {
    /// Build a trie for `rel` with attributes reordered to `attr_order` (a permutation
    /// of the relation's attributes).
    ///
    /// Single fused pass: argsort the row indices by the permuted columns (skipped
    /// when the order is native), then scan once, pushing a node at depth `d`
    /// whenever the current row first differs from the previous row at depth `≤ d`.
    pub fn build(rel: &Relation, attr_order: &[&str]) -> Result<Self, StorageError> {
        let positions = order_positions(rel, attr_order)?;
        let arity = rel.arity();
        let n = rel.len();
        let cols: Vec<&[Value]> = positions.iter().map(|&p| rel.column(p)).collect();

        let mut values: Vec<Vec<Value>> = vec![Vec::new(); arity];
        let mut child_start: Vec<Vec<usize>> = vec![Vec::new(); arity];
        fused_scan(rel, &positions, |r, d| {
            // the row starts a new node at every depth >= d
            for (depth, col) in cols.iter().enumerate().skip(d) {
                if depth + 1 < arity {
                    child_start[depth].push(values[depth + 1].len());
                }
                values[depth].push(col[r]);
            }
        });
        // closing sentinels: node i's children end where node i+1's begin
        for depth in 0..arity.saturating_sub(1) {
            child_start[depth].push(values[depth + 1].len());
        }

        let levels = values
            .into_iter()
            .zip(child_start)
            .map(|(values, child_start)| TrieLevel {
                values,
                child_start,
            })
            .collect();
        Ok(Trie {
            attr_order: attr_order.iter().map(|s| s.to_string()).collect(),
            levels,
            num_tuples: n,
        })
    }

    /// The attribute order of the trie.
    pub fn attr_order(&self) -> &[String] {
        &self.attr_order
    }

    /// Arity (number of levels).
    pub fn arity(&self) -> usize {
        self.attr_order.len()
    }

    /// Number of tuples in the underlying relation.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// Number of trie nodes at `depth` (distinct prefixes of length `depth + 1`).
    pub fn nodes_at(&self, depth: usize) -> usize {
        self.levels.get(depth).map_or(0, |l| l.values.len())
    }

    /// The sorted distinct values of the first attribute (the root sibling group) —
    /// what a cursor enumerates after its first `open`. Used by the execution layer
    /// to compute the first join variable's extension set up front.
    pub fn root_values(&self) -> &[Value] {
        self.levels.first().map_or(&[], |l| l.values.as_slice())
    }

    /// A cursor positioned at the root.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor {
            trie: self,
            stack: Vec::new(),
            work: CursorWork::default(),
        }
    }
}

/// A cursor frame: the sibling group `[start, end)` at this level and the position
/// within it.
#[derive(Debug, Clone, Copy)]
struct Frame {
    start: usize,
    pos: usize,
    end: usize,
}

/// A seekable cursor over a [`Trie`], implementing the Leapfrog Triejoin iterator
/// interface. `Send + Clone`: it borrows the shared trie and owns its stack and
/// work tallies.
#[derive(Debug, Clone)]
pub struct TrieCursor<'a> {
    trie: &'a Trie,
    stack: Vec<Frame>,
    work: CursorWork,
}

impl<'a> TrieCursor<'a> {
    /// Current depth: number of levels that have been opened (0 = at root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Arity of the underlying trie (total number of levels).
    pub fn arity(&self) -> usize {
        self.trie.arity()
    }

    /// Descend into the first child of the current node (or into the first root-level
    /// value when at the root). Returns `false` without moving if there are no
    /// children (already at the deepest level, or the trie is empty).
    pub fn open(&mut self) -> bool {
        let next_level = self.stack.len();
        if next_level >= self.trie.levels.len() {
            return false;
        }
        let (begin, end) = match self.stack.last() {
            None => (0, self.trie.levels[0].values.len()),
            Some(frame) => {
                let cs = &self.trie.levels[next_level - 1].child_start;
                (cs[frame.pos], cs[frame.pos + 1])
            }
        };
        if begin == end {
            return false;
        }
        self.stack.push(Frame {
            start: begin,
            pos: begin,
            end,
        });
        true
    }

    /// Ascend one level. No-op at the root.
    pub fn up(&mut self) {
        self.stack.pop();
    }

    /// The value at the cursor's current position. Panics if the cursor is at the root
    /// or at the end of its sibling group.
    pub fn key(&self) -> Value {
        let frame = self.stack.last().expect("cursor is at the root");
        assert!(frame.pos < frame.end, "cursor is at end of its group");
        self.trie.levels[self.stack.len() - 1].values[frame.pos]
    }

    /// Whether the cursor has run past the last sibling at the current level.
    pub fn at_end(&self) -> bool {
        match self.stack.last() {
            None => true,
            Some(f) => f.pos >= f.end,
        }
    }

    /// Advance to the next sibling. Returns `false` if that moves past the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        self.work.intersect_steps += 1;
        let frame = self.stack.last_mut().expect("cursor is at the root");
        if frame.pos < frame.end {
            frame.pos += 1;
        }
        frame.pos < frame.end
    }

    /// Seek to the least sibling with value `>= target` (galloping search). Returns
    /// `false` if no such sibling exists (the cursor is then `at_end`).
    pub fn seek(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values;
        if frame.pos >= frame.end {
            return false;
        }
        let (pos, probes) = crate::ops::gallop_lub(values, frame.pos, frame.end, target);
        self.work.probes += probes;
        frame.pos = pos;
        frame.pos < frame.end
    }

    /// Position at the sibling with value exactly `target`, searching the *whole*
    /// group (may move backward). Uncounted: used by the execution layer to
    /// re-position at keys whose discovery cost was already accounted elsewhere
    /// (e.g. the first-variable extension set shared across parallel workers).
    pub fn reposition(&mut self, target: Value) -> bool {
        let depth = self.stack.len();
        let frame = self.stack.last_mut().expect("cursor is at the root");
        let values = &self.trie.levels[depth - 1].values[frame.start..frame.end];
        match values.binary_search(&target) {
            Ok(i) => {
                frame.pos = frame.start + i;
                true
            }
            Err(i) => {
                frame.pos = frame.start + i;
                false
            }
        }
    }

    /// Convenience: the values remaining in the current sibling group, from the
    /// cursor's position onward.
    pub fn remaining(&self) -> &'a [Value] {
        match self.stack.last() {
            None => &[],
            Some(f) => &self.trie.levels[self.stack.len() - 1].values[f.pos..f.end],
        }
    }

    /// Drain the cursor's private work tallies (resetting them to zero).
    pub fn take_work(&mut self) -> CursorWork {
        std::mem::take(&mut self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![
                vec![1, 2, 10],
                vec![1, 2, 11],
                vec![1, 3, 10],
                vec![2, 2, 12],
                vec![4, 1, 1],
                vec![4, 1, 2],
            ],
        )
    }

    #[test]
    fn build_counts_nodes() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.num_tuples(), 6);
        assert_eq!(t.nodes_at(0), 3); // A in {1, 2, 4}
        assert_eq!(t.nodes_at(1), 4); // (1,2) (1,3) (2,2) (4,1)
        assert_eq!(t.nodes_at(2), 6); // all tuples distinct
        assert_eq!(t.root_values(), &[1, 2, 4]);
        assert_eq!(
            t.attr_order(),
            &["A".to_string(), "B".to_string(), "C".to_string()]
        );
    }

    #[test]
    fn cursor_walks_first_level() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        assert!(c.at_end()); // root has no key
        assert!(c.open());
        assert_eq!(c.depth(), 1);
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(c.next());
        assert_eq!(c.key(), 4);
        assert!(!c.next());
        assert!(c.at_end());
        c.up();
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn cursor_descends_into_correct_children() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // move to A = 4
        assert!(c.seek(4));
        assert_eq!(c.key(), 4);
        assert!(c.open());
        assert_eq!(c.key(), 1); // B values under A=4: {1}
        assert!(c.open());
        assert_eq!(c.remaining(), &[1, 2]); // C values under (4,1)
        assert_eq!(c.key(), 1);
        assert!(c.next());
        assert_eq!(c.key(), 2);
        assert!(!c.next());
    }

    #[test]
    fn seek_is_least_upper_bound() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        assert!(c.seek(2));
        assert_eq!(c.key(), 2);
        assert!(c.seek(3));
        assert_eq!(c.key(), 4); // 3 absent, lub is 4
        assert!(!c.seek(5)); // nothing >= 5
        assert!(c.at_end());
    }

    #[test]
    fn seek_within_child_group_does_not_escape() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // A = 1, children B in {2, 3}
        assert_eq!(c.key(), 1);
        c.open();
        assert!(c.seek(3));
        assert_eq!(c.key(), 3);
        assert!(!c.seek(4)); // 4 exists at level B only under A=2/A=4 groups, not here
    }

    #[test]
    fn reposition_is_bidirectional_within_group() {
        let t = Trie::build(&rel(), &["A", "B", "C"]).unwrap();
        let mut c = t.cursor();
        c.open();
        assert!(c.seek(4));
        assert_eq!(c.key(), 4);
        // reposition can move backward, unlike seek
        assert!(c.reposition(1));
        assert_eq!(c.key(), 1);
        assert!(c.reposition(4));
        assert_eq!(c.key(), 4);
        assert!(!c.reposition(3)); // absent
                                   // and it is uncounted work
        assert!(c.take_work().probes > 0); // from the earlier seek only
        assert!(c.reposition(2));
        assert_eq!(c.take_work(), CursorWork::default());
    }

    #[test]
    fn reordered_trie() {
        let t = Trie::build(&rel(), &["C", "B", "A"]).unwrap();
        let mut c = t.cursor();
        c.open();
        // C values overall: 1, 2, 10, 11, 12
        assert_eq!(c.remaining(), &[1, 2, 10, 11, 12]);
        assert!(c.seek(10));
        c.open();
        assert_eq!(c.remaining(), &[2, 3]); // B values with C=10
    }

    #[test]
    fn reordered_trie_enumerates_reordered_tuples() {
        // the fused argsort build must agree with reorder-then-build
        let r = rel();
        for order in [
            ["A", "B", "C"],
            ["A", "C", "B"],
            ["B", "A", "C"],
            ["B", "C", "A"],
            ["C", "A", "B"],
            ["C", "B", "A"],
        ] {
            let t = Trie::build(&r, &order).unwrap();
            let reordered = r.reorder(&order).unwrap();
            let mut out = Vec::new();
            let mut c = t.cursor();
            walk(&mut c, 3, &mut Vec::new(), &mut out);
            assert_eq!(out, reordered.rows(), "order {order:?}");
        }
    }

    #[test]
    fn empty_relation_trie() {
        let t = Trie::build(&Relation::empty(Schema::new(&["A", "B"])), &["A", "B"]).unwrap();
        let mut c = t.cursor();
        assert!(!c.open());
        assert_eq!(t.nodes_at(0), 0);
        assert_eq!(t.num_tuples(), 0);
        assert!(t.root_values().is_empty());
    }

    #[test]
    fn unary_relation_trie() {
        let r = Relation::from_rows(Schema::new(&["A"]), vec![vec![5], vec![2], vec![9]]);
        let t = Trie::build(&r, &["A"]).unwrap();
        let mut c = t.cursor();
        assert!(c.open());
        assert_eq!(c.remaining(), &[2, 5, 9]);
        assert!(!c.open()); // no deeper level
        assert!(c.seek(6));
        assert_eq!(c.key(), 9);
    }

    #[test]
    fn cursor_records_work_privately() {
        let r = Relation::from_rows(Schema::new(&["A"]), (0..1000).map(|i| vec![i]).collect());
        let t = Trie::build(&r, &["A"]).unwrap();
        let mut c = t.cursor();
        c.open();
        c.seek(900);
        c.next();
        let w = c.take_work();
        assert!(w.probes > 0);
        assert!(w.intersect_steps > 0);
        // take_work drains
        assert!(c.take_work().is_zero());
    }

    #[test]
    fn cursors_are_send_and_clone() {
        fn assert_send_clone<T: Send + Clone>() {}
        fn assert_sync<T: Sync>() {}
        assert_send_clone::<TrieCursor<'_>>();
        assert_sync::<Trie>();
        // a clone is an independent cursor with its own stack
        let r = rel();
        let t = Trie::build(&r, &["A", "B", "C"]).unwrap();
        let mut a = t.cursor();
        a.open();
        a.seek(2);
        let mut b = a.clone();
        b.next();
        assert_eq!(a.key(), 2);
        assert_eq!(b.key(), 4);
    }

    #[test]
    fn bad_attr_order_rejected() {
        assert!(Trie::build(&rel(), &["A", "B"]).is_err());
        assert!(Trie::build(&rel(), &["A", "B", "Z"]).is_err());
        assert!(Trie::build(&rel(), &["A", "B", "B"]).is_err());
    }

    fn walk(
        c: &mut TrieCursor<'_>,
        arity: usize,
        prefix: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if !c.open() {
            return;
        }
        loop {
            if c.at_end() {
                break;
            }
            prefix.push(c.key());
            if prefix.len() == arity {
                out.push(prefix.clone());
            } else {
                walk(c, arity, prefix, out);
            }
            prefix.pop();
            if !c.next() {
                break;
            }
        }
        c.up();
    }

    #[test]
    fn trie_enumerates_all_tuples() {
        // depth-first walk of the trie must reproduce the sorted tuple set
        let r = rel();
        let t = Trie::build(&r, &["A", "B", "C"]).unwrap();
        let mut out = Vec::new();
        let mut c = t.cursor();
        walk(&mut c, 3, &mut Vec::new(), &mut out);
        assert_eq!(out, r.rows());
    }
}
