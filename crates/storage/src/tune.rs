//! Startup auto-tuning of the kernel-policy thresholds.
//!
//! The adaptive kernel heuristic (`kernels::choose_kernel`) and the cursor seek
//! fast path steer on four thresholds that PR 3 hard-coded to constants measured
//! on one container. This module turns them into a [`KernelCalibration`] struct
//! and measures them on the *host* with a sub-50ms micro-benchmark probe at
//! first use:
//!
//! * `merge_max_ratio` — largest `max/min` list-size ratio at which the (now
//!   SIMD) merge kernel still beats galloping search.
//! * `bitmap_max_span` — widest common span the bitmap kernel may window.
//! * `bitmap_span_per_element` — how sparse (span per smallest-list element)
//!   the bitmap kernel is allowed to run before merge/gallop win.
//! * `linear_seek_max` — seek window length below which a linear scan beats
//!   galloping search.
//!
//! Resolution order for [`KernelCalibration::host`]:
//! 1. `WCOJ_TUNE=fixed` (or `off`) → the fixed defaults, probe skipped.
//! 2. A cached calibration file — `$WCOJ_TUNE_FILE` or `~/.wcoj-tune.json`.
//! 3. The micro-benchmark probe; its result is written back to the cache file
//!    (best effort) so later processes skip the probe.
//! 4. Per-field env overrides (`WCOJ_MERGE_MAX_RATIO`, `WCOJ_BITMAP_MAX_SPAN`,
//!    `WCOJ_BITMAP_SPAN_PER_ELEMENT`, `WCOJ_LINEAR_SEEK_MAX`) applied on top of
//!    whichever base was chosen.
//!
//! Calibration changes which kernel the adaptive policy picks, and therefore
//! the deterministic work counters. Anything that records or gates counters
//! (the bench harness, `perf_gate`) pins [`KernelCalibration::fixed`] so
//! recorded baselines stay machine-independent; live queries get the host
//! calibration through `ExecOptions`.

use crate::kernels::{self, KernelPolicy};
use crate::simd::{self, SimdLevel};
use crate::stats::WorkCounter;
use crate::Value;
use std::sync::OnceLock;
use std::time::Instant;

/// The tunable kernel-policy thresholds. `Default` (== [`KernelCalibration::fixed`])
/// reproduces the PR 3 constants bit-for-bit, which is what every recorded
/// baseline pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCalibration {
    /// Merge is chosen when the largest list is at most this many times the smallest.
    pub merge_max_ratio: usize,
    /// Bitmap is considered only when the common span is at most this many values.
    pub bitmap_max_span: u64,
    /// ... and the span is within this factor of the smallest list.
    pub bitmap_span_per_element: u64,
    /// Seek windows at or below this length use a linear scan instead of galloping.
    pub linear_seek_max: usize,
}

impl Default for KernelCalibration {
    fn default() -> Self {
        Self::fixed()
    }
}

impl KernelCalibration {
    /// The fixed thresholds every recorded baseline (bench, `perf_gate`) pins:
    /// exactly the PR 3 constants.
    pub const fn fixed() -> Self {
        KernelCalibration {
            merge_max_ratio: kernels::MERGE_MAX_RATIO,
            bitmap_max_span: kernels::BITMAP_MAX_SPAN,
            bitmap_span_per_element: kernels::BITMAP_SPAN_PER_ELEMENT,
            linear_seek_max: crate::ops::LINEAR_SEEK_MAX,
        }
    }

    /// The host calibration: cached probe results (or the probe itself on first
    /// use), with env overrides applied. Computed once per process.
    pub fn host() -> &'static KernelCalibration {
        static HOST: OnceLock<KernelCalibration> = OnceLock::new();
        HOST.get_or_init(|| {
            let mode = std::env::var("WCOJ_TUNE").unwrap_or_default();
            let mut cal = if mode == "fixed" || mode == "off" {
                KernelCalibration::fixed()
            } else if let Some(cached) = load_cache() {
                cached
            } else {
                let (cal, _) = probe(simd::active_level());
                store_cache(&cal);
                cal
            };
            cal.apply_env_overrides();
            cal
        })
    }

    fn apply_env_overrides(&mut self) {
        if let Some(v) = env_usize("WCOJ_MERGE_MAX_RATIO") {
            self.merge_max_ratio = v;
        }
        if let Some(v) = env_usize("WCOJ_BITMAP_MAX_SPAN") {
            self.bitmap_max_span = v as u64;
        }
        if let Some(v) = env_usize("WCOJ_BITMAP_SPAN_PER_ELEMENT") {
            self.bitmap_span_per_element = v as u64;
        }
        if let Some(v) = env_usize("WCOJ_LINEAR_SEEK_MAX") {
            self.linear_seek_max = v;
        }
    }

    /// Serialize as a single-line JSON object (the cache-file format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"merge_max_ratio\":{},\"bitmap_max_span\":{},\"bitmap_span_per_element\":{},\"linear_seek_max\":{}}}",
            self.merge_max_ratio, self.bitmap_max_span, self.bitmap_span_per_element, self.linear_seek_max
        )
    }

    /// Parse the cache-file format written by [`KernelCalibration::to_json`].
    /// Unknown keys are ignored; missing keys keep their fixed default.
    pub fn from_json(text: &str) -> Option<Self> {
        let mut cal = KernelCalibration::fixed();
        let mut any = false;
        for (key, field) in [
            ("merge_max_ratio", 0usize),
            ("bitmap_max_span", 1),
            ("bitmap_span_per_element", 2),
            ("linear_seek_max", 3),
        ] {
            if let Some(v) = json_u64_field(text, key) {
                any = true;
                match field {
                    0 => cal.merge_max_ratio = v as usize,
                    1 => cal.bitmap_max_span = v,
                    2 => cal.bitmap_span_per_element = v,
                    _ => cal.linear_seek_max = v as usize,
                }
            }
        }
        if any {
            Some(cal)
        } else {
            None
        }
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn json_u64_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Path of the calibration cache file: `$WCOJ_TUNE_FILE`, else `~/.wcoj-tune.json`.
pub fn cache_path() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("WCOJ_TUNE_FILE") {
        if !p.is_empty() {
            return Some(p.into());
        }
    }
    let home = std::env::var("HOME").ok()?;
    if home.is_empty() {
        return None;
    }
    Some(std::path::Path::new(&home).join(".wcoj-tune.json"))
}

fn load_cache() -> Option<KernelCalibration> {
    let text = std::fs::read_to_string(cache_path()?).ok()?;
    KernelCalibration::from_json(&text)
}

fn store_cache(cal: &KernelCalibration) {
    if let Some(path) = cache_path() {
        let _ = std::fs::write(path, cal.to_json() + "\n");
    }
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

fn sorted_unique(seed: &mut u64, len: usize, span: u64) -> Vec<Value> {
    let mut v: Vec<Value> = (0..len * 2).map(|_| xorshift(seed) % span).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

/// Median-of-repeats wall time of `f` in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F, reps: usize) -> u64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Run the micro-benchmark probe at `level` and return the measured calibration
/// plus the probe's wall-clock in milliseconds. Budgeted well under 50ms: each
/// threshold is decided from a handful of ~10µs timing cells.
pub fn probe(level: SimdLevel) -> (KernelCalibration, f64) {
    let started = Instant::now();
    let mut seed = 0xA076_1D64_78BD_642F;
    let w = WorkCounter::new();
    let mut out: Vec<Value> = Vec::new();
    let mut cal = KernelCalibration::fixed();

    // merge-vs-gallop crossover: fix the smallest list at 64 elements and grow
    // the larger list; merge stays the pick while it still wins the timing cell.
    let small = sorted_unique(&mut seed, 64, 1 << 20);
    let mut ratio = 4usize;
    for cand in [4usize, 8, 16, 32, 64, 128] {
        let large = sorted_unique(&mut seed, 64 * cand, 1 << 20);
        let lists: [&[Value]; 2] = [&small, &large];
        let t_merge = time_ns(
            || {
                kernels::intersect_into_at(level, &mut out, &lists, KernelPolicy::Merge, &w);
            },
            15,
        );
        let t_gallop = time_ns(
            || {
                kernels::intersect_into_at(level, &mut out, &lists, KernelPolicy::Gallop, &w);
            },
            15,
        );
        if t_merge <= t_gallop {
            ratio = cand;
        } else {
            break;
        }
    }
    cal.merge_max_ratio = ratio;

    // bitmap sparsity cutoff: lists of 192 elements over spans of
    // 192 * {4, 8, 16, 32, 64} values; bitmap keeps the slot while it beats the
    // best size-comparable alternative (merge at these shapes).
    let mut spe = 4u64;
    for cand in [4u64, 8, 16, 32, 64] {
        let span = 192 * cand;
        let a = sorted_unique(&mut seed, 192, span);
        let b = sorted_unique(&mut seed, 192, span);
        let lists: [&[Value]; 2] = [&a, &b];
        let t_bitmap = time_ns(
            || {
                kernels::intersect_into_at(level, &mut out, &lists, KernelPolicy::Bitmap, &w);
            },
            15,
        );
        let t_merge = time_ns(
            || {
                kernels::intersect_into_at(level, &mut out, &lists, KernelPolicy::Merge, &w);
            },
            15,
        );
        if t_bitmap <= t_merge {
            spe = cand;
        } else {
            break;
        }
    }
    cal.bitmap_span_per_element = spe;
    // the span cap scales with the measured sparsity tolerance, clamped to keep
    // the windowed bitsets inside L1 (the stack-buffer fast path)
    cal.bitmap_max_span = (256 * spe).clamp(1024, 4096);

    // linear-vs-gallop seek cutoff: windows of {8, 16, 32, 64} values. A single
    // hot window overstates the linear scan (everything in L1, branches learned),
    // so each timing cell sweeps one seek per window across a working set larger
    // than L1 — the cache behavior real cursor seeks actually see.
    let big = sorted_unique(&mut seed, 1 << 14, 1 << 30);
    let mut linear = 8usize;
    for cand in [8usize, 16, 32, 64] {
        let windows: Vec<(usize, Value)> = (0..big.len() / cand)
            .map(|i| {
                let start = i * cand;
                (start, big[start + (xorshift(&mut seed) as usize) % cand])
            })
            .collect();
        let t_linear = time_ns(
            || {
                for &(start, t) in &windows {
                    std::hint::black_box(crate::simd::linear_lub(
                        level,
                        &big,
                        start,
                        start + cand,
                        t,
                    ));
                }
            },
            9,
        );
        let t_gallop = time_ns(
            || {
                for &(start, t) in &windows {
                    std::hint::black_box(crate::ops::gallop_lub(&big, start, start + cand, t));
                }
            },
            9,
        );
        if t_linear <= t_gallop {
            linear = cand;
        } else {
            break;
        }
    }
    cal.linear_seek_max = linear;

    (cal, started.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_matches_historical_constants() {
        let cal = KernelCalibration::fixed();
        assert_eq!(cal.merge_max_ratio, 8);
        assert_eq!(cal.bitmap_max_span, 4096);
        assert_eq!(cal.bitmap_span_per_element, 16);
        assert_eq!(cal.linear_seek_max, 16);
        assert_eq!(cal, KernelCalibration::default());
    }

    #[test]
    fn json_roundtrip() {
        let cal = KernelCalibration {
            merge_max_ratio: 32,
            bitmap_max_span: 2048,
            bitmap_span_per_element: 8,
            linear_seek_max: 64,
        };
        assert_eq!(KernelCalibration::from_json(&cal.to_json()), Some(cal));
        assert_eq!(KernelCalibration::from_json("not json"), None);
        // partial objects keep fixed defaults for missing keys
        let partial = KernelCalibration::from_json("{\"linear_seek_max\": 32}").unwrap();
        assert_eq!(partial.linear_seek_max, 32);
        assert_eq!(
            partial.merge_max_ratio,
            KernelCalibration::fixed().merge_max_ratio
        );
    }

    #[test]
    fn probe_is_fast_and_sane() {
        let (cal, ms) = probe(crate::simd::active_level());
        assert!(ms < 50.0, "probe took {ms:.1}ms, budget is 50ms");
        assert!(cal.merge_max_ratio >= 4);
        assert!((1024..=4096).contains(&cal.bitmap_max_span));
        assert!(cal.bitmap_span_per_element >= 4);
        assert!(cal.linear_seek_max >= 8);
    }
}
