//! Classical relational operators: multi-way sorted-set intersection, binary hash
//! join, sort-merge join, and a naive nested-loop multi-way join used as ground truth
//! in differential tests.
//!
//! The binary joins here are the building blocks of the *baselines* the paper's
//! worst-case optimal algorithms are compared against (the "one-pair-at-a-time join
//! paradigm" of Section 1.1); the multi-way intersection is the building block of the
//! WCOJ engines themselves. The joins operate column-at-a-time over the columnar
//! [`Relation`] layout: keys are gathered from key columns, matches are emitted by
//! appending to output columns, and no intermediate row objects are allocated.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::stats::WorkCounter;
use crate::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Intersect any number of sorted, deduplicated value slices.
///
/// Delegates to the adaptive kernel layer ([`crate::kernels`]): the common-span
/// and size-ratio heuristic picks branchless merge, galloping search
/// (`O(k · m · log(M/m))` for smallest list `m`, largest `M` — the "intersection
/// in time proportional to the smaller set" primitive every runtime analysis in
/// the paper relies on), or a small-domain bitmap kernel. Work and the kernel
/// choice are recorded into `counter`.
pub fn intersect_sorted(lists: &[&[Value]], counter: &WorkCounter) -> Vec<Value> {
    crate::kernels::intersect(lists, crate::kernels::KernelPolicy::Adaptive, counter)
}

/// Least-upper-bound galloping search within `values[start..end]`: the first index
/// `>= start` (and `< end`) whose value is `>= target`, or `end` if none. Returns the
/// index and the number of probes performed. Shared by every seekable cursor
/// ([`crate::TrieCursor`], [`crate::PrefixCursor`]).
pub(crate) fn gallop_lub(
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
) -> (usize, u64) {
    debug_assert!(end <= values.len());
    // Galloping: double the step until we pass `target`, then binary search.
    let mut step = 1usize;
    let mut lo = start;
    let mut probes = 1u64;
    while lo + step < end && values[lo + step] < target {
        lo += step;
        step *= 2;
        probes += 1;
    }
    let mut h = end.min(lo + step + 1);
    // Binary search in [lo, h) for the first value >= target.
    let mut l = lo;
    while l < h {
        let m = (l + h) / 2;
        probes += 1;
        if values[m] < target {
            l = m + 1;
        } else {
            h = m;
        }
    }
    (l, probes)
}

/// Sibling groups at or below this length are sought by a branch-predictable
/// linear scan instead of galloping: for tiny groups the scan's sequential loads
/// beat the galloping search's data-dependent branches. This is the *fixed*
/// default; the calibrated value lives in [`crate::tune::KernelCalibration`].
pub(crate) const LINEAR_SEEK_MAX: usize = 16;

/// Adaptive least-upper-bound seek with an explicit SIMD level and calibrated
/// linear-scan cutoff: linear scan for windows at or under `linear_max`
/// (recorded as comparisons), galloping search otherwise (recorded as probes).
/// Returns `(position, probes, comparisons)` — the seek path shared by every
/// cursor, mirroring the kernel layer's adaptivity at the single-seek grain.
///
/// The counted work is a pure function of `(start, end, position, cutoff)` —
/// the linear path charges `1 + (position - start)` comparisons and the gallop
/// path charges the [`gallop_lub`] probe sequence replayed arithmetically — so
/// the SIMD level changes wall-clock only, never the counters. The *cutoff*
/// does change counters (it picks which tally a seek lands in), which is why
/// recorded baselines pin the fixed calibration.
pub(crate) fn seek_lub_cal(
    level: crate::simd::SimdLevel,
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
    linear_max: usize,
) -> (usize, u64, u64) {
    debug_assert!(end <= values.len());
    if end - start <= linear_max {
        let pos = crate::simd::linear_lub(level, values, start, end, target);
        (pos, 0, 1 + (pos - start) as u64)
    } else {
        match level {
            crate::simd::SimdLevel::Scalar => {
                let (pos, probes) = gallop_lub(values, start, end, target);
                (pos, probes, 0)
            }
            _ => {
                let (pos, probes) = gallop_lub_at(level, values, start, end, target);
                (pos, probes, 0)
            }
        }
    }
}

/// Uncounted least-upper-bound search in `values[start..end]` — the repositioning
/// path (`advance_to`) which by contract records no work. Linear scan below the
/// calibrated cutoff (previously this always galloped, even for a 2-element
/// window), galloping search above it.
pub(crate) fn advance_lub(
    level: crate::simd::SimdLevel,
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
    linear_max: usize,
) -> usize {
    debug_assert!(end <= values.len());
    if end - start <= linear_max {
        crate::simd::linear_lub(level, values, start, end, target)
    } else {
        find_lub(level, values, start, end, target)
    }
}

/// Position-only least-upper-bound search: the same doubling phase as
/// [`gallop_lub`], but the binary phase hands its last iterations to the SIMD
/// forward scan once the window is small — fewer data-dependent branches, same
/// position.
fn find_lub(
    level: crate::simd::SimdLevel,
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
) -> usize {
    const SIMD_TAIL: usize = 64;
    let mut step = 1usize;
    let mut lo = start;
    while lo + step < end && values[lo + step] < target {
        lo += step;
        step *= 2;
    }
    let mut h = end.min(lo + step + 1);
    let mut l = lo;
    while h - l > SIMD_TAIL {
        let m = (l + h) / 2;
        if values[m] < target {
            l = m + 1;
        } else {
            h = m;
        }
    }
    crate::simd::linear_lub(level, values, l, h, target)
}

/// [`gallop_lub`] with a SIMD binary tail and an identical probe tally.
///
/// The doubling phase and the wide binary iterations run (and count) exactly
/// as in [`gallop_lub`]; once the window shrinks to one vector-scan's worth,
/// the landing position comes from [`crate::simd::linear_lub`] and the probes
/// the remaining binary iterations *would* have recorded are replayed with
/// pure index arithmetic — inside `[l, h)` the position is the partition
/// point, so `values[m] < target ⟺ m < position`.
fn gallop_lub_at(
    level: crate::simd::SimdLevel,
    values: &[Value],
    start: usize,
    end: usize,
    target: Value,
) -> (usize, u64) {
    const SIMD_TAIL: usize = 64;
    let mut step = 1usize;
    let mut lo = start;
    let mut probes = 1u64;
    while lo + step < end && values[lo + step] < target {
        lo += step;
        step *= 2;
        probes += 1;
    }
    let mut h = end.min(lo + step + 1);
    let mut l = lo;
    while h - l > SIMD_TAIL {
        let m = (l + h) / 2;
        probes += 1;
        if values[m] < target {
            l = m + 1;
        } else {
            h = m;
        }
    }
    let pos = crate::simd::linear_lub(level, values, l, h, target);
    while l < h {
        let m = (l + h) / 2;
        probes += 1;
        if m < pos {
            l = m + 1;
        } else {
            h = m;
        }
    }
    (pos, probes)
}

/// Find the first index `>= start` with `list[index] >= target` using galloping search.
pub(crate) fn gallop(list: &[Value], start: usize, target: Value, counter: &WorkCounter) -> usize {
    let mut lo = start;
    if lo >= list.len() || list[lo] >= target {
        counter.add_probes(1);
        return lo;
    }
    let mut step = 1usize;
    let mut probes = 1u64;
    while lo + step < list.len() && list[lo + step] < target {
        lo += step;
        step *= 2;
        probes += 1;
    }
    let mut hi = (lo + step + 1).min(list.len());
    let mut l = lo + 1;
    while l < hi {
        let m = (l + hi) / 2;
        probes += 1;
        if list[m] < target {
            l = m + 1;
        } else {
            hi = m;
        }
    }
    counter.add_probes(probes);
    l
}

/// [`gallop`] at an explicit SIMD level: the doubling phase and wide binary
/// iterations run (and count) exactly as in [`gallop`]; the last vector-scan's
/// worth of binary search is done by [`crate::simd::linear_lub`] with the
/// skipped iterations' probes replayed arithmetically, so the tally is
/// bit-identical to the scalar path.
pub(crate) fn gallop_at(
    level: crate::simd::SimdLevel,
    list: &[Value],
    start: usize,
    target: Value,
    counter: &WorkCounter,
) -> usize {
    if let crate::simd::SimdLevel::Scalar = level {
        return gallop(list, start, target, counter);
    }
    let mut lo = start;
    if lo >= list.len() || list[lo] >= target {
        counter.add_probes(1);
        return lo;
    }
    const SIMD_TAIL: usize = 64;
    let mut step = 1usize;
    let mut probes = 1u64;
    while lo + step < list.len() && list[lo + step] < target {
        lo += step;
        step *= 2;
        probes += 1;
    }
    let mut hi = (lo + step + 1).min(list.len());
    let mut l = lo + 1;
    while hi - l > SIMD_TAIL {
        let m = (l + hi) / 2;
        probes += 1;
        if list[m] < target {
            l = m + 1;
        } else {
            hi = m;
        }
    }
    let pos = crate::simd::linear_lub(level, list, l, hi, target);
    while l < hi {
        let m = (l + hi) / 2;
        probes += 1;
        if m < pos {
            l = m + 1;
        } else {
            hi = m;
        }
    }
    counter.add_probes(probes);
    pos
}

/// Positions of the common attributes, the output attribute sources, and the output
/// schema for a natural join `left ⋈ right` (left attributes then right-only
/// attributes).
struct JoinShape {
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    right_only: Vec<usize>,
    out_schema: crate::Schema,
}

fn join_shape(left: &Relation, right: &Relation) -> Result<JoinShape, StorageError> {
    let common = left.schema().common_attrs(right.schema());
    if common.is_empty() {
        return Err(StorageError::NoJoinAttributes);
    }
    let common_refs: Vec<&str> = common.iter().map(|s| s.as_str()).collect();
    let left_key = left.schema().positions(&common_refs)?;
    let right_key = right.schema().positions(&common_refs)?;
    let right_only_names: Vec<String> = right.schema().attrs_not_in(left.schema());
    let right_only: Vec<usize> = right_only_names
        .iter()
        .map(|a| right.schema().require(a))
        .collect::<Result<_, _>>()?;
    Ok(JoinShape {
        left_key,
        right_key,
        right_only,
        out_schema: left.schema().join_schema(right.schema()),
    })
}

/// Append the joined row `(left row li, right row ri)` to the output columns
/// (left attributes first, then right-only attributes).
#[inline]
fn emit_match(
    out_cols: &mut [Vec<Value>],
    left: &Relation,
    right: &Relation,
    right_only: &[usize],
    li: usize,
    ri: usize,
) {
    let la = left.arity();
    for (c, out) in out_cols[..la].iter_mut().enumerate() {
        out.push(left.column(c)[li]);
    }
    for (&rc, out) in right_only.iter().zip(out_cols[la..].iter_mut()) {
        out.push(right.column(rc)[ri]);
    }
}

/// Natural binary hash join. Builds a hash table on the smaller input keyed by the
/// shared attributes and probes with the larger input, gathering keys and emitting
/// matches column-at-a-time. Intermediate (= output) tuples and probes are recorded
/// in `counter`.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    counter: &WorkCounter,
) -> Result<Relation, StorageError> {
    let shape = join_shape(left, right)?;

    // Build on the smaller side, probe with the larger, but always produce the schema
    // `left ⋈ right` (left attrs then right-only attrs) so plans are deterministic.
    let build_is_left = left.len() <= right.len();
    let (build_rel, probe_rel, build_key, probe_key) = if build_is_left {
        (left, right, &shape.left_key, &shape.right_key)
    } else {
        (right, left, &shape.right_key, &shape.left_key)
    };

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for i in 0..build_rel.len() {
        let key: Vec<Value> = build_key.iter().map(|&p| build_rel.column(p)[i]).collect();
        table.entry(key).or_default().push(i);
    }

    let mut out_cols: Vec<Vec<Value>> = vec![Vec::new(); shape.out_schema.arity()];
    let mut emitted = 0u64;
    let mut key: Vec<Value> = vec![0; probe_key.len()];
    for j in 0..probe_rel.len() {
        counter.add_probes(1);
        for (k, &p) in probe_key.iter().enumerate() {
            key[k] = probe_rel.column(p)[j];
        }
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                let (li, ri) = if build_is_left { (i, j) } else { (j, i) };
                emit_match(&mut out_cols, left, right, &shape.right_only, li, ri);
                emitted += 1;
            }
        }
    }
    counter.add_intermediate(emitted);
    Relation::try_from_columns(shape.out_schema, out_cols)
}

/// Natural sort-merge join: both inputs are argsorted by the shared attributes
/// (index permutations — no row materialization), then merged. Produces the same
/// output and schema as [`hash_join`]; comparisons are recorded in `counter`.
pub fn merge_join(
    left: &Relation,
    right: &Relation,
    counter: &WorkCounter,
) -> Result<Relation, StorageError> {
    let shape = join_shape(left, right)?;
    let lperm = left.sort_perm(&shape.left_key);
    let rperm = right.sort_perm(&shape.right_key);

    let key_cmp = |li: usize, ri: usize| -> Ordering {
        for (&lp, &rp) in shape.left_key.iter().zip(&shape.right_key) {
            match left.column(lp)[li].cmp(&right.column(rp)[ri]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    };

    let mut out_cols: Vec<Vec<Value>> = vec![Vec::new(); shape.out_schema.arity()];
    let mut emitted = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < lperm.len() && j < rperm.len() {
        counter.add_comparisons(1);
        match key_cmp(lperm[i], rperm[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // find the extent of the equal-key runs on both sides
                let i_end = i + lperm[i..]
                    .iter()
                    .take_while(|&&li| key_cmp(li, rperm[j]) == Ordering::Equal)
                    .count();
                let j_end = j + rperm[j..]
                    .iter()
                    .take_while(|&&ri| key_cmp(lperm[i], ri) == Ordering::Equal)
                    .count();
                for &li in &lperm[i..i_end] {
                    for &ri in &rperm[j..j_end] {
                        emit_match(&mut out_cols, left, right, &shape.right_only, li, ri);
                        emitted += 1;
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    counter.add_intermediate(emitted);
    Relation::try_from_columns(shape.out_schema, out_cols)
}

/// Naive multi-way natural join by pairwise nested loops, used as ground truth in
/// differential tests. Quadratic per pair — only use on small inputs.
pub fn nested_loop_join(relations: &[&Relation]) -> Result<Relation, StorageError> {
    assert!(!relations.is_empty(), "need at least one relation");
    let mut acc = relations[0].clone();
    for rel in &relations[1..] {
        let common = acc.schema().common_attrs(rel.schema());
        let out_schema = acc.schema().join_schema(rel.schema());
        let rel_only: Vec<String> = rel.schema().attrs_not_in(acc.schema());
        let acc_pos: Vec<usize> = common
            .iter()
            .map(|a| acc.schema().require(a))
            .collect::<Result<_, _>>()?;
        let rel_pos: Vec<usize> = common
            .iter()
            .map(|a| rel.schema().require(a))
            .collect::<Result<_, _>>()?;
        let rel_only_pos: Vec<usize> = rel_only
            .iter()
            .map(|a| rel.schema().require(a))
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for t in acc.iter() {
            for u in rel.iter() {
                let matches = acc_pos
                    .iter()
                    .zip(&rel_pos)
                    .all(|(&ap, &rp)| t[ap] == u[rp]);
                if matches {
                    let mut row = t.clone();
                    row.extend(rel_only_pos.iter().map(|&p| u[p]));
                    rows.push(row);
                }
            }
        }
        acc = Relation::try_from_rows(out_schema, rows)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn r() -> Relation {
        Relation::from_rows(
            Schema::new(&["A", "B"]),
            vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![5, 6]],
        )
    }

    fn s() -> Relation {
        Relation::from_rows(
            Schema::new(&["B", "C"]),
            vec![vec![2, 7], vec![3, 8], vec![3, 9], vec![4, 1]],
        )
    }

    #[test]
    fn intersect_basic() {
        let w = WorkCounter::new();
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 9, 11];
        let c = vec![1, 3, 9];
        let out = intersect_sorted(&[&a, &b, &c], &w);
        assert_eq!(out, vec![3, 9]);
        // comparable tiny lists: the adaptive layer runs the merge kernel
        assert_eq!(w.kernel_calls(), 1);
        assert!(w.total_work() > 0);
    }

    #[test]
    fn intersect_edge_cases() {
        let w = WorkCounter::new();
        assert!(intersect_sorted(&[], &w).is_empty());
        let a = vec![1, 2, 3];
        let empty: Vec<Value> = vec![];
        assert!(intersect_sorted(&[&a, &empty], &w).is_empty());
        assert_eq!(intersect_sorted(&[&a], &w), vec![1, 2, 3]);
        let disjoint = vec![10, 20];
        assert!(intersect_sorted(&[&a, &disjoint], &w).is_empty());
    }

    #[test]
    fn intersect_work_proportional_to_smallest() {
        // smallest list has 3 elements; the iteration count must equal 3 regardless of
        // how large the other list is.
        let w = WorkCounter::new();
        let small = vec![10, 500, 900];
        let large: Vec<Value> = (0..100_000).collect();
        let out = intersect_sorted(&[&large, &small], &w);
        assert_eq!(out, vec![10, 500, 900]);
        assert_eq!(w.intersect_steps(), 3);
        // galloping probes are logarithmic, far below the large list's size
        assert!(w.probes() < 200, "probes = {}", w.probes());
    }

    #[test]
    fn gallop_finds_lub() {
        let w = WorkCounter::new();
        let list = vec![2, 4, 6, 8, 10];
        assert_eq!(gallop(&list, 0, 5, &w), 2);
        assert_eq!(gallop(&list, 0, 6, &w), 2);
        assert_eq!(gallop(&list, 0, 1, &w), 0);
        assert_eq!(gallop(&list, 0, 11, &w), 5);
        assert_eq!(gallop(&list, 3, 9, &w), 4);
        assert_eq!(gallop(&list, 5, 1, &w), 5);
    }

    #[test]
    fn hash_join_natural() {
        let w = WorkCounter::new();
        let out = hash_join(&r(), &s(), &w).unwrap();
        assert_eq!(
            out.schema().attrs(),
            &["A".to_string(), "B".to_string(), "C".to_string()]
        );
        // B=2 matches (1,2)x(2,7); B=3 matches {(1,3),(2,3)} x {(3,8),(3,9)}: 5 total
        assert_eq!(out.len(), 5);
        let expected = Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![
                vec![1, 2, 7],
                vec![1, 3, 8],
                vec![1, 3, 9],
                vec![2, 3, 8],
                vec![2, 3, 9],
            ],
        );
        assert_eq!(hash_join(&r(), &s(), &w).unwrap(), expected);
        assert!(w.intermediate_tuples() >= 5);
        assert!(w.probes() > 0);
    }

    #[test]
    fn hash_join_is_symmetric_in_content() {
        let w = WorkCounter::new();
        let a = hash_join(&r(), &s(), &w).unwrap();
        let b = hash_join(&s(), &r(), &w).unwrap();
        // schemas differ in attribute order, but the tuple sets must agree after
        // reordering
        let b_reordered = b.reorder(&["A", "B", "C"]).unwrap();
        assert_eq!(a.rows(), b_reordered.rows());
    }

    #[test]
    fn hash_join_requires_common_attribute() {
        let w = WorkCounter::new();
        let t = Relation::empty(Schema::new(&["X", "Y"]));
        assert_eq!(
            hash_join(&r(), &t, &w).unwrap_err(),
            StorageError::NoJoinAttributes
        );
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let w = WorkCounter::new();
        let hj = hash_join(&r(), &s(), &w).unwrap();
        let mj = merge_join(&r(), &s(), &w).unwrap();
        assert_eq!(hj, mj);
        assert!(w.comparisons() > 0);
    }

    #[test]
    fn merge_join_multi_attribute_key() {
        let w = WorkCounter::new();
        let l = Relation::from_rows(
            Schema::new(&["A", "B", "X"]),
            vec![vec![1, 2, 100], vec![1, 3, 200], vec![2, 2, 300]],
        );
        let rr = Relation::from_rows(
            Schema::new(&["A", "B", "Y"]),
            vec![vec![1, 2, 7], vec![1, 2, 8], vec![2, 2, 9], vec![9, 9, 9]],
        );
        let hj = hash_join(&l, &rr, &w).unwrap();
        let mj = merge_join(&l, &rr, &w).unwrap();
        assert_eq!(hj, mj);
        assert_eq!(hj.len(), 3);
    }

    #[test]
    fn merge_join_non_leading_key_columns() {
        // the shared attribute is trailing on the left, leading on the right: the
        // argsort path must still align the runs correctly
        let w = WorkCounter::new();
        let l = Relation::from_rows(
            Schema::new(&["X", "B"]),
            vec![vec![10, 2], vec![20, 1], vec![30, 2]],
        );
        let rr = Relation::from_rows(Schema::new(&["B", "Y"]), vec![vec![1, 5], vec![2, 6]]);
        let hj = hash_join(&l, &rr, &w).unwrap();
        let mj = merge_join(&l, &rr, &w).unwrap();
        assert_eq!(hj, mj);
        assert_eq!(mj.len(), 3);
    }

    #[test]
    fn nested_loop_ground_truth_triangle() {
        let w = WorkCounter::new();
        let r = Relation::from_pairs("A", "B", vec![(1, 2), (2, 3), (1, 3)]);
        let s = Relation::from_pairs("B", "C", vec![(2, 3), (3, 1), (3, 4)]);
        let t = Relation::from_pairs("A", "C", vec![(1, 3), (2, 1), (1, 4)]);
        let out = nested_loop_join(&[&r, &s, &t]).unwrap();
        // triangles: (A,B,C) with R(A,B), S(B,C), T(A,C):
        // (1,2,3): R(1,2) S(2,3) T(1,3) yes; (2,3,1): R(2,3) S(3,1) T(2,1) yes;
        // (1,3,4): R(1,3) S(3,4) T(1,4) yes; (1,3,1): S(3,1), T(1,1)? no.
        assert_eq!(out.len(), 3);
        assert!(out.contains(&[1, 2, 3]));
        assert!(out.contains(&[2, 3, 1]));
        assert!(out.contains(&[1, 3, 4]));
        // hash-join plan computes the same thing
        let rs = hash_join(&r, &s, &w).unwrap();
        let rst = hash_join(&rs, &t, &w).unwrap();
        let proj = rst.project(&["A", "B", "C"]).unwrap();
        assert_eq!(proj.rows(), out.rows());
    }

    #[test]
    fn nested_loop_cartesian_when_no_shared_attrs() {
        let a = Relation::from_rows(Schema::new(&["A"]), vec![vec![1], vec![2]]);
        let b = Relation::from_rows(Schema::new(&["B"]), vec![vec![10], vec![20], vec![30]]);
        let out = nested_loop_join(&[&a, &b]).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn joins_with_empty_inputs() {
        let w = WorkCounter::new();
        let empty = Relation::empty(Schema::new(&["B", "C"]));
        assert!(hash_join(&r(), &empty, &w).unwrap().is_empty());
        assert!(merge_join(&r(), &empty, &w).unwrap().is_empty());
        assert!(nested_loop_join(&[&r(), &empty]).unwrap().is_empty());
    }
}
