//! A small text syntax for queries and degree constraints.
//!
//! Queries use datalog syntax:
//!
//! ```text
//! Q(A, B, C) :- R(A, B), S(B, C), T(A, C).
//! ```
//!
//! (The head is optional — `R(A,B), S(B,C), T(A,C).` also parses; trailing period
//! optional.)
//!
//! Constraints use one declaration per line:
//!
//! ```text
//! |R| <= 1000              # cardinality constraint guarded by atom R
//! deg(W; A, D | C) <= 50   # degree constraint (X={C}, Y={A,C,D}) guarded by W
//! S: A -> B                # functional dependency A -> B guarded by S
//! ```
//!
//! Lines starting with `#` (or blank lines) are ignored.

use crate::constraints::{ConstraintSet, DegreeConstraint};
use crate::query::{ConjunctiveQuery, QueryError};
use std::fmt;

/// Parse errors for the query / constraint syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input was empty or contained no atoms.
    Empty,
    /// A syntactic problem, with a human-readable description.
    Syntax(String),
    /// The parsed text referenced an unknown variable or atom.
    Query(QueryError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty query"),
            ParseError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ParseError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::Query(e)
    }
}

/// Parse an atom like `R(A, B)` into `(name, vars)`.
fn parse_atom(text: &str) -> Result<(String, Vec<String>), ParseError> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| ParseError::Syntax(format!("expected `(` in atom `{text}`")))?;
    if !text.ends_with(')') {
        return Err(ParseError::Syntax(format!(
            "expected `)` at end of atom `{text}`"
        )));
    }
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(ParseError::Syntax(format!(
            "missing relation name in `{text}`"
        )));
    }
    let inner = &text[open + 1..text.len() - 1];
    let vars: Vec<String> = inner
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if vars.is_empty() {
        return Err(ParseError::Syntax(format!(
            "atom `{name}` has no variables"
        )));
    }
    Ok((name.to_string(), vars))
}

/// Split a comma-separated list of atoms, respecting parentheses.
fn split_atoms(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parse a conjunctive query from datalog syntax.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    let text = text.trim().trim_end_matches('.').trim();
    if text.is_empty() {
        return Err(ParseError::Empty);
    }
    // strip optional head
    let body = match text.find(":-") {
        Some(pos) => &text[pos + 2..],
        None => text,
    };
    let atom_texts = split_atoms(body);
    if atom_texts.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut builder = ConjunctiveQuery::builder();
    for at in &atom_texts {
        let (name, vars) = parse_atom(at)?;
        let var_refs: Vec<&str> = vars.iter().map(|s| s.as_str()).collect();
        builder = builder.atom(&name, &var_refs);
    }
    Ok(builder.build()?)
}

/// Parse one constraint declaration (see module docs) against `query`.
fn parse_constraint_line(
    line: &str,
    query: &ConjunctiveQuery,
) -> Result<DegreeConstraint, ParseError> {
    let line = line.trim();
    // cardinality: |R| <= N
    if let Some(rest) = line.strip_prefix('|') {
        let close = rest
            .find('|')
            .ok_or_else(|| ParseError::Syntax(format!("expected closing `|` in `{line}`")))?;
        let name = rest[..close].trim();
        let after = rest[close + 1..].trim();
        let bound = parse_bound(after, line)?;
        let idx = query.atom_index(name)?;
        return Ok(DegreeConstraint::cardinality(query.atom_var_set(idx), bound).with_guard(idx));
    }
    // degree: deg(R; Y1, Y2 | X1, X2) <= N     (the `| X...` part optional)
    if let Some(rest) = line.strip_prefix("deg(") {
        let close = rest
            .rfind(')')
            .ok_or_else(|| ParseError::Syntax(format!("expected `)` in `{line}`")))?;
        let inside = &rest[..close];
        let after = rest[close + 1..].trim();
        let bound = parse_bound(after, line)?;
        let (guard_name, spec) = inside
            .split_once(';')
            .ok_or_else(|| ParseError::Syntax(format!("expected `;` after guard in `{line}`")))?;
        let guard_idx = query.atom_index(guard_name.trim())?;
        let (y_part, x_part) = match spec.split_once('|') {
            Some((y, x)) => (y, x),
            None => (spec, ""),
        };
        let xs = parse_var_list(x_part, query)?;
        let mut ys = parse_var_list(y_part, query)?;
        ys.extend(xs.iter().copied());
        if ys.len() == xs.len() {
            return Err(ParseError::Syntax(format!(
                "degree constraint `{line}` bounds no variable"
            )));
        }
        return Ok(DegreeConstraint::new(xs, ys, bound).with_guard(guard_idx));
    }
    // FD: R: A, B -> C
    if let Some((guard_name, fd)) = line.split_once(':') {
        if let Some((lhs, rhs)) = fd.split_once("->") {
            let guard_idx = query.atom_index(guard_name.trim())?;
            let xs = parse_var_list(lhs, query)?;
            let ys = parse_var_list(rhs, query)?;
            if xs.is_empty() || ys.is_empty() {
                return Err(ParseError::Syntax(format!("malformed FD `{line}`")));
            }
            return Ok(DegreeConstraint::functional_dependency(xs, ys).with_guard(guard_idx));
        }
    }
    Err(ParseError::Syntax(format!(
        "unrecognized constraint `{line}`"
    )))
}

fn parse_bound(text: &str, line: &str) -> Result<u64, ParseError> {
    let rest = text
        .strip_prefix("<=")
        .ok_or_else(|| ParseError::Syntax(format!("expected `<=` in `{line}`")))?;
    rest.trim()
        .parse::<u64>()
        .map_err(|_| ParseError::Syntax(format!("bad bound in `{line}`")))
}

fn parse_var_list(text: &str, query: &ConjunctiveQuery) -> Result<Vec<usize>, ParseError> {
    let mut out = Vec::new();
    for v in text.split(',') {
        let v = v.trim();
        if v.is_empty() {
            continue;
        }
        out.push(query.var_id(v)?);
    }
    Ok(out)
}

/// Parse a multi-line constraint declaration block against `query`.
pub fn parse_constraints(
    text: &str,
    query: &ConjunctiveQuery,
) -> Result<ConstraintSet, ParseError> {
    let mut dc = ConstraintSet::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        dc.push(parse_constraint_line(line, query)?);
    }
    Ok(dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triangle_with_head() {
        let q = parse_query("Q(A, B, C) :- R(A, B), S(B, C), T(A, C).").unwrap();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.to_string(), "Q(A, B, C) :- R(A, B), S(B, C), T(A, C).");
    }

    #[test]
    fn parse_body_only_no_period() {
        let q = parse_query("R(A,B), S(B,C)").unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse_query("").unwrap_err(), ParseError::Empty);
        assert!(matches!(
            parse_query("R(A,").unwrap_err(),
            ParseError::Syntax(_)
        ));
        assert!(matches!(
            parse_query("R A,B)").unwrap_err(),
            ParseError::Syntax(_)
        ));
        assert!(matches!(
            parse_query("(A,B)").unwrap_err(),
            ParseError::Syntax(_)
        ));
        assert!(matches!(
            parse_query("R()").unwrap_err(),
            ParseError::Syntax(_)
        ));
        // duplicate variable inside an atom is a query-level error
        assert!(matches!(
            parse_query("R(A,A)").unwrap_err(),
            ParseError::Query(_)
        ));
    }

    #[test]
    fn parse_cardinality_constraints() {
        let q = parse_query("R(A,B), S(B,C), T(A,C)").unwrap();
        let dc = parse_constraints("|R| <= 100\n|S| <= 200\n# comment\n\n|T| <= 300", &q).unwrap();
        assert_eq!(dc.len(), 3);
        assert!(dc.cardinalities_only());
        assert_eq!(dc.constraints()[1].bound, 200);
        assert_eq!(dc.constraints()[2].guard, Some(2));
    }

    #[test]
    fn parse_degree_and_fd_constraints() {
        let q = parse_query("R(A), S(A,B), T(B,C), W(C,A,D)").unwrap();
        let text = "|R| <= 10\n\
                    deg(S; B | A) <= 5\n\
                    deg(W; A, D | C) <= 7\n\
                    S: A -> B";
        let dc = parse_constraints(text, &q).unwrap();
        assert_eq!(dc.len(), 4);
        let deg = &dc.constraints()[2];
        assert_eq!(deg.bound, 7);
        assert_eq!(deg.x, vec![q.var_id("C").unwrap()]);
        assert!(deg.y.contains(&q.var_id("D").unwrap()));
        assert!(deg.y.contains(&q.var_id("A").unwrap()));
        assert_eq!(deg.guard, Some(3));
        let fd = &dc.constraints()[3];
        assert!(fd.is_simple_fd());
        assert_eq!(fd.guard, Some(1));
    }

    #[test]
    fn parse_degree_without_condition() {
        let q = parse_query("R(A,B)").unwrap();
        let dc = parse_constraints("deg(R; A, B) <= 9", &q).unwrap();
        assert!(dc.constraints()[0].is_cardinality());
        assert_eq!(dc.constraints()[0].bound, 9);
    }

    #[test]
    fn parse_constraint_errors() {
        let q = parse_query("R(A,B)").unwrap();
        assert!(parse_constraints("|Z| <= 5", &q).is_err());
        assert!(parse_constraints("|R| < 5", &q).is_err());
        assert!(parse_constraints("|R| <= five", &q).is_err());
        assert!(parse_constraints("deg(R A | B) <= 5", &q).is_err());
        assert!(parse_constraints("deg(R; | A) <= 5", &q).is_err());
        assert!(parse_constraints("R: -> B", &q).is_err());
        assert!(parse_constraints("nonsense", &q).is_err());
        assert!(parse_constraints("R: A -> Z", &q).is_err());
    }

    #[test]
    fn error_display() {
        assert!(ParseError::Empty.to_string().contains("empty"));
        assert!(ParseError::Syntax("boom".into())
            .to_string()
            .contains("boom"));
        let e: ParseError = QueryError::EmptyQuery.into();
        assert!(!e.to_string().is_empty());
    }
}
