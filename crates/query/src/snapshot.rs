//! MVCC snapshots: pin a database's visible state for lock-free readers.
//!
//! A [`Snapshot`] is a frozen view of a [`Database`] taken at one instant:
//! every relation's state — base run, sealed-run list, append buffer,
//! live-set, dictionaries — is pinned by `Arc` refcounts, **not copied**
//! (see [`Database#snapshots`](Database#snapshots)). Taking one is
//! O(catalog size); holding one costs nothing beyond keeping the pinned
//! allocations alive. Writers on the live database proceed concurrently:
//! appends, seals, and compactions copy-on-write exactly the structures they
//! touch, so a reader executing against the snapshot observes a stable state
//! and produces **bit-identical** rows and work counters to a run against the
//! database at pin time, no matter what the writer does in between.
//!
//! Snapshots share the origin database's access-structure cache. That is safe
//! by construction — cache keys carry relation identity stamps and delta
//! entries revalidate against run ids, so a snapshot can never surface a
//! structure built over state it does not hold — and it is what makes
//! repeated reads cheap: a snapshot both hits and seeds the same cache the
//! live database uses, and entries built over runs that survive a writer's
//! seal keep hitting on both sides.
//!
//! `Snapshot` derefs to [`Database`], so every read-only API — and the
//! execution layer, which takes `&Database` — works on a snapshot unchanged:
//!
//! ```
//! use wcoj_query::Database;
//! use wcoj_storage::Relation;
//!
//! let mut db = Database::new();
//! db.insert("R", Relation::from_pairs("A", "B", vec![(1, 2)]));
//! db.to_delta("R").unwrap();
//! let snap = db.snapshot();
//! db.insert_delta("R", vec![3, 4]).unwrap(); // invisible to `snap`
//! assert_eq!(snap.delta("R").unwrap().len(), 1);
//! assert_eq!(db.delta("R").unwrap().len(), 2);
//! ```

use crate::database::Database;
use std::collections::HashMap;
use std::ops::Deref;

/// A pinned, read-only view of a [`Database`] at one instant. See the
/// [module docs](crate::snapshot). Obtained from [`Database::snapshot`];
/// cheap to take, cheap to clone, safe to send to reader threads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The pinned catalog: a copy-on-write clone of the origin database.
    /// Private and never mutated — `Snapshot` only hands out `&Database`.
    db: Database,
    /// Every relation's modification epoch at pin time, for optimistic
    /// concurrency (compare-and-set writes validate against these).
    epochs: HashMap<String, u64>,
}

impl Snapshot {
    /// Pin `db`'s current state (see [`Database::snapshot`]).
    pub(crate) fn pin(db: &Database) -> Self {
        let epochs = db
            .relation_names()
            .into_iter()
            .filter_map(|name| db.relation_epoch(name).map(|e| (name.to_string(), e)))
            .collect();
        let mut db = db.clone();
        // the clone is marked so the execution layer's delta-view caching
        // keys this snapshot's frozen views away from the live head slot —
        // a pinned snapshot must never evict the advancing head's entry
        db.mark_snapshot();
        Snapshot { db, epochs }
    }

    /// The modification epoch relation `name` had when this snapshot was
    /// taken, or `None` if it did not exist then. A writer can compare this
    /// against the live [`Database::relation_epoch`] to detect conflicting
    /// mutations since the snapshot (equal epochs imply identical state).
    pub fn epoch_of(&self, name: &str) -> Option<u64> {
        self.epochs.get(name).copied()
    }

    /// All pinned `(relation, epoch)` pairs, unsorted.
    pub fn epochs(&self) -> impl Iterator<Item = (&str, u64)> {
        self.epochs.iter().map(|(n, &e)| (n.as_str(), e))
    }
}

impl Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

impl AsRef<Database> for Snapshot {
    fn as_ref(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::Relation;

    fn seeded() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", vec![(1, 2), (2, 3), (1, 3)]),
        );
        db.to_delta("R").unwrap();
        db.insert("S", Relation::from_pairs("B", "C", vec![(2, 3), (3, 1)]));
        db
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut db = seeded();
        let snap = db.snapshot();
        db.insert_delta("R", vec![9, 9]).unwrap();
        db.delete("R", &[1, 2]).unwrap();
        db.seal("R").unwrap();
        db.compact("R", 2).unwrap();
        db.insert("S", Relation::from_pairs("B", "C", vec![(7, 7)]));
        // the snapshot still sees pin-time state, bit-identically
        assert_eq!(
            snap.delta("R").unwrap().snapshot().rows(),
            vec![vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        assert_eq!(snap.get("S").unwrap().len(), 2);
        assert_eq!(db.delta("R").unwrap().len(), 3);
        assert_eq!(db.get("S").unwrap().len(), 1);
    }

    #[test]
    fn epochs_detect_conflicting_writers() {
        let mut db = seeded();
        let snap = db.snapshot();
        assert_eq!(snap.epoch_of("R"), db.relation_epoch("R"));
        assert_eq!(snap.epoch_of("S"), db.relation_epoch("S"));
        assert_eq!(snap.epoch_of("nope"), None);
        assert_eq!(snap.epochs().count(), 2);
        db.insert_delta("R", vec![9, 9]).unwrap();
        assert_ne!(snap.epoch_of("R"), db.relation_epoch("R"), "R diverged");
        assert_eq!(snap.epoch_of("S"), db.relation_epoch("S"), "S untouched");
    }

    #[test]
    fn snapshot_pins_dictionaries() {
        use wcoj_storage::{AttrType, Schema, TypedValue};
        let mut db = Database::new();
        let schema = Schema::with_types(&["A", "B"], &[AttrType::Str, AttrType::Str]);
        db.insert_typed_rows(
            "R",
            schema.clone(),
            &[vec![TypedValue::from("x"), TypedValue::from("y")]],
        )
        .unwrap();
        let snap = db.snapshot();
        db.insert_typed_rows(
            "R",
            schema,
            &[vec![TypedValue::from("p"), TypedValue::from("q")]],
        )
        .unwrap();
        assert_eq!(snap.dictionary("A").unwrap().len(), 1, "pinned dict");
        assert_eq!(db.dictionary("A").unwrap().len(), 2);
    }
}
