//! `wcoj-query` — queries, hypergraphs, and degree constraints.
//!
//! This crate models the objects of Section 3.1 of *Worst-Case Optimal Join
//! Algorithms* (Ngo, PODS 2018):
//!
//! * a **full conjunctive query** `Q(A_[n]) ← ⋀_{F ∈ E} R_F(A_F)` over a
//!   multi-hypergraph `H = ([n], E)` — [`ConjunctiveQuery`] / [`Hypergraph`];
//! * **degree constraints** `(X, Y, N_{Y|X})` (Definition 1), which strictly
//!   generalize cardinality constraints (`X = ∅`) and functional dependencies
//!   (`N = 1`) — [`DegreeConstraint`] / [`ConstraintSet`];
//! * the **constraint dependency graph** `G_DC` and acyclicity of a constraint set
//!   (Definition 3), compatible variable orders, and the acyclic **constraint repair**
//!   of Proposition 5.2 / Corollary 5.3 — [`constraint_graph`], [`repair`];
//! * a **database** binding atom names to [`wcoj_storage::Relation`]s, with
//!   verification that it satisfies a constraint set (`D ⊨ DC`) — [`Database`];
//! * **MVCC snapshots** pinning a database's visible state via `Arc` refcounts
//!   so readers run lock-free against a frozen view while writers proceed —
//!   [`Snapshot`];
//! * GYO reduction / α-acyclicity of the query hypergraph — [`gyo`];
//! * a small datalog-style parser for queries and constraints — [`parser`];
//! * **variable-order planning** for the join engines of `wcoj-core`: per-atom
//!   attribute orders induced by a global variable order, and a weighted greedy
//!   order heuristic fed by the AGM fractional edge cover — [`plan`].
//!
//! # Example
//!
//! ```
//! use wcoj_query::{ConjunctiveQuery, ConstraintSet};
//!
//! // the triangle query of Section 2 of the paper
//! let q = ConjunctiveQuery::builder()
//!     .atom("R", &["A", "B"])
//!     .atom("S", &["B", "C"])
//!     .atom("T", &["A", "C"])
//!     .build()
//!     .unwrap();
//! assert_eq!(q.num_vars(), 3);
//! assert_eq!(q.hypergraph().num_edges(), 3);
//!
//! // cardinality constraints |R|,|S|,|T| <= 100 form an acyclic constraint set
//! let dc = ConstraintSet::all_cardinalities(&q, &[("R", 100), ("S", 100), ("T", 100)]).unwrap();
//! assert!(dc.is_acyclic(q.num_vars()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod database;
pub mod gyo;
pub mod hypergraph;
pub mod parser;
pub mod plan;
pub mod query;
pub mod repair;
pub mod snapshot;

pub use constraints::{constraint_graph, ConstraintSet, DegreeConstraint};
pub use database::{AtomSource, Database, VarBinding};
pub use hypergraph::Hypergraph;
pub use parser::{parse_constraints, parse_query, ParseError};
pub use plan::{atom_attr_order, default_order, is_valid_order, weighted_greedy_order};
pub use query::{Atom, ConjunctiveQuery, QueryBuilder, QueryError};
pub use repair::{bound_variables, is_output_finite, repair_to_acyclic};
pub use snapshot::Snapshot;

/// A variable identifier: a dense index into the query's variable list.
pub type VarId = usize;
