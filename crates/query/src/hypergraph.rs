//! Multi-hypergraphs: the combinatorial skeleton of a conjunctive query.

use crate::VarId;

/// A multi-hypergraph `H = ([n], E)`: `n` vertices (query variables) and a multiset of
/// hyperedges (atom variable sets). Edges may repeat (e.g. the triangle query on a
/// single edge relation `R = S = T = E`), which is why edges are stored as a `Vec`
/// rather than a set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vertices: usize,
    /// Each edge is a sorted, deduplicated list of vertices.
    edges: Vec<Vec<VarId>>,
}

impl Hypergraph {
    /// Create a hypergraph with `num_vertices` vertices and the given edges. Vertices
    /// inside each edge are sorted and deduplicated; out-of-range vertices panic.
    pub fn new(num_vertices: usize, edges: Vec<Vec<VarId>>) -> Self {
        let edges = edges
            .into_iter()
            .map(|mut e| {
                e.sort_unstable();
                e.dedup();
                for &v in &e {
                    assert!(v < num_vertices, "vertex {v} out of range");
                }
                e
            })
            .collect();
        Hypergraph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges `|E|` (with multiplicity).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, each a sorted vertex list.
    pub fn edges(&self) -> &[Vec<VarId>] {
        &self.edges
    }

    /// The `i`-th edge.
    pub fn edge(&self, i: usize) -> &[VarId] {
        &self.edges[i]
    }

    /// Indices of the edges containing vertex `v` (the set `∂(v)` used in the
    /// inductive proof of Friedgut's inequality, Theorem 4.1).
    pub fn edges_containing(&self, v: VarId) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.binary_search(&v).is_ok())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every vertex is contained in at least one edge (a prerequisite for the
    /// fractional edge cover polytope to be non-empty and the AGM bound finite).
    pub fn covers_all_vertices(&self) -> bool {
        (0..self.num_vertices).all(|v| !self.edges_containing(v).is_empty())
    }

    /// Whether `weights` (one per edge) is a fractional edge cover: non-negative and
    /// summing to at least 1 on every vertex.
    pub fn is_fractional_edge_cover(&self, weights: &[f64]) -> bool {
        if weights.len() != self.edges.len() || weights.iter().any(|&w| w < -1e-12) {
            return false;
        }
        (0..self.num_vertices).all(|v| {
            let total: f64 = self.edges_containing(v).iter().map(|&i| weights[i]).sum();
            total >= 1.0 - 1e-9
        })
    }

    /// Whether `cover` (a set of edge indices) is an integral edge cover.
    pub fn is_integral_edge_cover(&self, cover: &[usize]) -> bool {
        let mut weights = vec![0.0; self.edges.len()];
        for &i in cover {
            if i >= self.edges.len() {
                return false;
            }
            weights[i] = 1.0;
        }
        self.is_fractional_edge_cover(&weights)
    }

    /// Remove vertex `v` from every edge, dropping edges that become empty, and keeping
    /// only non-dominated information — the hypergraph `H'` used in the inductive step
    /// of the proof of Friedgut's inequality (Theorem 4.1). The vertex set stays `[n]`
    /// (vertex ids are not renumbered); `v` simply no longer occurs in any edge.
    pub fn remove_vertex(&self, v: VarId) -> Hypergraph {
        let edges: Vec<Vec<VarId>> = self
            .edges
            .iter()
            .map(|e| e.iter().copied().filter(|&u| u != v).collect::<Vec<_>>())
            .filter(|e: &Vec<VarId>| !e.is_empty())
            .collect();
        Hypergraph {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// The hypergraph of a Loomis–Whitney query `LW(n)`: `n` vertices and the `n`
    /// edges `[n] \ {i}` — every atom contains all but one variable (Section 1.2).
    pub fn loomis_whitney(n: usize) -> Hypergraph {
        assert!(n >= 2, "LW(n) needs n >= 2");
        let edges = (0..n)
            .map(|skip| (0..n).filter(|&v| v != skip).collect())
            .collect();
        Hypergraph::new(n, edges)
    }

    /// The hypergraph of the `k`-clique query: `k` vertices and an edge `{i, j}` for
    /// every pair `i < j`.
    pub fn clique(k: usize) -> Hypergraph {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push(vec![i, j]);
            }
        }
        Hypergraph::new(k, edges)
    }

    /// The hypergraph of the `k`-cycle query: vertices `0..k` and edges
    /// `{i, (i+1) mod k}`.
    pub fn cycle(k: usize) -> Hypergraph {
        assert!(k >= 3, "cycles need at least 3 vertices");
        let edges = (0..k).map(|i| vec![i, (i + 1) % k]).collect();
        Hypergraph::new(k, edges)
    }

    /// The star query with `k` leaves: center vertex `0` and edges `{0, i}` for
    /// `i = 1..=k`.
    pub fn star(k: usize) -> Hypergraph {
        let edges = (1..=k).map(|i| vec![0, i]).collect();
        Hypergraph::new(k + 1, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let h = Hypergraph::cycle(3);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edges_containing(0), vec![0, 2]);
        assert!(h.covers_all_vertices());
        assert!(h.is_fractional_edge_cover(&[0.5, 0.5, 0.5]));
        assert!(h.is_fractional_edge_cover(&[1.0, 1.0, 0.0]));
        assert!(!h.is_fractional_edge_cover(&[0.5, 0.5, 0.0]));
        assert!(!h.is_fractional_edge_cover(&[0.5, 0.5]));
        assert!(!h.is_fractional_edge_cover(&[-0.5, 1.5, 1.0]));
        assert!(h.is_integral_edge_cover(&[0, 1, 2]));
        assert!(h.is_integral_edge_cover(&[0, 1]));
        assert!(!h.is_integral_edge_cover(&[0]));
        assert!(!h.is_integral_edge_cover(&[9]));
    }

    #[test]
    fn multi_edges_allowed() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1], vec![1, 0, 0]]);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(2), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        let _ = Hypergraph::new(2, vec![vec![0, 5]]);
    }

    #[test]
    fn uncovered_vertex_detected() {
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        assert!(!h.covers_all_vertices());
    }

    #[test]
    fn remove_vertex_drops_empty_edges() {
        let h = Hypergraph::new(3, vec![vec![0], vec![0, 1], vec![1, 2]]);
        let h2 = h.remove_vertex(0);
        assert_eq!(h2.num_edges(), 2);
        assert_eq!(h2.edge(0), &[1]);
        assert_eq!(h2.edge(1), &[1, 2]);
    }

    #[test]
    fn loomis_whitney_shape() {
        let h = Hypergraph::loomis_whitney(4);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 4);
        for (i, e) in h.edges().iter().enumerate() {
            assert_eq!(e.len(), 3);
            assert!(!e.contains(&i));
        }
        // LW(3) is the triangle
        assert_eq!(Hypergraph::loomis_whitney(3).num_edges(), 3);
    }

    #[test]
    fn clique_cycle_star_shapes() {
        assert_eq!(Hypergraph::clique(4).num_edges(), 6);
        assert_eq!(Hypergraph::cycle(4).num_edges(), 4);
        assert_eq!(Hypergraph::star(3).num_edges(), 3);
        assert_eq!(Hypergraph::star(3).num_vertices(), 4);
        // k-cycle edges wrap around
        let c4 = Hypergraph::cycle(4);
        assert_eq!(c4.edge(3), &[0, 3]);
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        let _ = Hypergraph::cycle(2);
    }
}
