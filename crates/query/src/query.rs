//! Full conjunctive queries.

use crate::hypergraph::Hypergraph;
use crate::VarId;
use std::fmt;

/// Errors produced while building or validating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no atoms.
    EmptyQuery,
    /// The same variable appears twice in one atom (e.g. `R(A, A)`), which this model
    /// does not support — rewrite with an explicit equality selection instead.
    DuplicateVarInAtom {
        /// Atom name.
        atom: String,
        /// Offending variable name.
        var: String,
    },
    /// A referenced variable does not exist in the query.
    UnknownVariable(String),
    /// A referenced atom does not exist in the query.
    UnknownAtom(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query has no atoms"),
            QueryError::DuplicateVarInAtom { atom, var } => {
                write!(f, "variable `{var}` appears twice in atom `{atom}`")
            }
            QueryError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            QueryError::UnknownAtom(a) => write!(f, "unknown atom `{a}`"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One atom `R_F(A_F)` of a conjunctive query: a relation name plus the query
/// variables appearing in each argument position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation name. Several atoms may share a name (self-joins), e.g. the
    /// triangle query over a single edge relation.
    pub name: String,
    /// Variable ids in argument-position order.
    pub vars: Vec<VarId>,
}

/// A full conjunctive query `Q(A_[n]) ← ⋀_F R_F(A_F)` (equation (25) of the paper).
///
/// The head contains every variable (the query is *full*); projections are handled by
/// the engines/baselines that need them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    var_names: Vec<String>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Start building a query.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The variable names, indexed by [`VarId`] (order of first appearance).
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v]
    }

    /// Id of the variable named `name`.
    pub fn var_id(&self, name: &str) -> Result<VarId, QueryError> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| QueryError::UnknownVariable(name.to_string()))
    }

    /// The atoms of the query body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The `i`-th atom.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// Index of the first atom with the given relation name.
    pub fn atom_index(&self, name: &str) -> Result<usize, QueryError> {
        self.atoms
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| QueryError::UnknownAtom(name.to_string()))
    }

    /// Variable names of atom `i`, in argument order — this doubles as the schema the
    /// corresponding relation must have in a [`crate::Database`].
    pub fn atom_var_names(&self, i: usize) -> Vec<&str> {
        self.atoms[i]
            .vars
            .iter()
            .map(|&v| self.var_names[v].as_str())
            .collect()
    }

    /// The query's multi-hypergraph `H = ([n], E)`.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.num_vars(),
            self.atoms.iter().map(|a| a.vars.clone()).collect(),
        )
    }

    /// Ids of the variables of atom `i`, sorted.
    pub fn atom_var_set(&self, i: usize) -> Vec<VarId> {
        let mut v = self.atoms[i].vars.clone();
        v.sort_unstable();
        v
    }

    /// The atoms (by index) whose variable set contains variable `v`.
    pub fn atoms_containing(&self, v: VarId) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.vars.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    /// Datalog syntax, e.g. `Q(A, B, C) :- R(A, B), S(B, C), T(A, C).`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({})", self.var_names.join(", "))?;
        write!(f, " :- ")?;
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a.vars.iter().map(|&v| self.var_names[v].as_str()).collect();
                format!("{}({})", a.name, vars.join(", "))
            })
            .collect();
        write!(f, "{}.", body.join(", "))
    }
}

/// Incremental builder for [`ConjunctiveQuery`]. Variables are registered in order of
/// first appearance across atoms.
#[derive(Debug, Default, Clone)]
pub struct QueryBuilder {
    atoms: Vec<(String, Vec<String>)>,
}

impl QueryBuilder {
    /// Add an atom `name(vars...)`.
    pub fn atom(mut self, name: &str, vars: &[&str]) -> Self {
        self.atoms.push((
            name.to_string(),
            vars.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Finish building, validating the query.
    pub fn build(self) -> Result<ConjunctiveQuery, QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut var_names: Vec<String> = Vec::new();
        let mut atoms = Vec::new();
        for (name, vars) in self.atoms {
            let mut ids = Vec::with_capacity(vars.len());
            for v in &vars {
                if vars.iter().filter(|w| *w == v).count() > 1 {
                    return Err(QueryError::DuplicateVarInAtom {
                        atom: name.clone(),
                        var: v.clone(),
                    });
                }
                let id = match var_names.iter().position(|n| n == v) {
                    Some(id) => id,
                    None => {
                        var_names.push(v.clone());
                        var_names.len() - 1
                    }
                };
                ids.push(id);
            }
            atoms.push(Atom { name, vars: ids });
        }
        Ok(ConjunctiveQuery { var_names, atoms })
    }
}

/// Pre-built queries used throughout the paper and this workspace's experiments.
pub mod examples {
    use super::ConjunctiveQuery;

    /// The triangle query (2): `Q(A,B,C) ← R(A,B), S(B,C), T(A,C)`.
    pub fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::builder()
            .atom("R", &["A", "B"])
            .atom("S", &["B", "C"])
            .atom("T", &["A", "C"])
            .build()
            .unwrap()
    }

    /// The 4-cycle query: `Q(A,B,C,D) ← R(A,B), S(B,C), T(C,D), W(D,A)`.
    pub fn four_cycle() -> ConjunctiveQuery {
        ConjunctiveQuery::builder()
            .atom("R", &["A", "B"])
            .atom("S", &["B", "C"])
            .atom("T", &["C", "D"])
            .atom("W", &["D", "A"])
            .build()
            .unwrap()
    }

    /// The Loomis–Whitney query `LW(k)`: `k` variables, each atom omits exactly one.
    pub fn loomis_whitney(k: usize) -> ConjunctiveQuery {
        assert!(k >= 2);
        let names: Vec<String> = (0..k).map(|i| format!("X{i}")).collect();
        let mut b = ConjunctiveQuery::builder();
        for skip in 0..k {
            let vars: Vec<&str> = (0..k)
                .filter(|&v| v != skip)
                .map(|v| names[v].as_str())
                .collect();
            b = b.atom(&format!("R{skip}"), &vars);
        }
        b.build().unwrap()
    }

    /// The `k`-clique query over a single edge relation `E`, variables `X0..Xk-1`.
    pub fn clique(k: usize) -> ConjunctiveQuery {
        assert!(k >= 2);
        let names: Vec<String> = (0..k).map(|i| format!("X{i}")).collect();
        let mut b = ConjunctiveQuery::builder();
        for i in 0..k {
            for j in (i + 1)..k {
                b = b.atom("E", &[names[i].as_str(), names[j].as_str()]);
            }
        }
        b.build().unwrap()
    }

    /// The chain query of equation (63):
    /// `Q(A,B,C,D) ← R(A), S(A,B), T(B,C), W(C,A,D)`.
    pub fn chain_with_guard() -> ConjunctiveQuery {
        ConjunctiveQuery::builder()
            .atom("R", &["A"])
            .atom("S", &["A", "B"])
            .atom("T", &["B", "C"])
            .atom("W", &["C", "A", "D"])
            .build()
            .unwrap()
    }

    /// The query of Example 1 (Section 5.2.3):
    /// `Q(A,B,C,D) ← R(A,B), S(B,C), T(C,D), W(A,C,D), V(A,B,D)`.
    pub fn example_one() -> ConjunctiveQuery {
        ConjunctiveQuery::builder()
            .atom("R", &["A", "B"])
            .atom("S", &["B", "C"])
            .atom("T", &["C", "D"])
            .atom("W", &["A", "C", "D"])
            .atom("V", &["A", "B", "D"])
            .build()
            .unwrap()
    }

    /// Star query with `k` leaves: `Q(A, B1..Bk) ← R1(A,B1), ..., Rk(A,Bk)`.
    pub fn star(k: usize) -> ConjunctiveQuery {
        let mut b = ConjunctiveQuery::builder();
        for i in 1..=k {
            let bi = format!("B{i}");
            b = b.atom(&format!("R{i}"), &["A", bi.as_str()]);
        }
        b.build().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_registers_vars_in_appearance_order() {
        let q = examples::triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(
            q.var_names(),
            &["A".to_string(), "B".to_string(), "C".to_string()]
        );
        assert_eq!(q.var_id("C").unwrap(), 2);
        assert!(q.var_id("Z").is_err());
        assert_eq!(q.var_name(1), "B");
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.atom(1).name, "S");
        assert_eq!(q.atom(1).vars, vec![1, 2]);
        assert_eq!(q.atom_var_names(2), vec!["A", "C"]);
        assert_eq!(q.atom_index("T").unwrap(), 2);
        assert!(q.atom_index("Z").is_err());
        assert_eq!(q.atoms_containing(0), vec![0, 2]);
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(
            ConjunctiveQuery::builder().build().unwrap_err(),
            QueryError::EmptyQuery
        );
    }

    #[test]
    fn duplicate_var_in_atom_rejected() {
        let err = ConjunctiveQuery::builder()
            .atom("R", &["A", "A"])
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateVarInAtom { .. }));
    }

    #[test]
    fn hypergraph_matches_atoms() {
        let q = examples::four_cycle();
        let h = q.hypergraph();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(q.atom_var_set(3), vec![0, 3]);
    }

    #[test]
    fn display_round_trip_syntax() {
        let q = examples::triangle();
        let s = q.to_string();
        assert_eq!(s, "Q(A, B, C) :- R(A, B), S(B, C), T(A, C).");
    }

    #[test]
    fn example_queries_have_expected_shapes() {
        assert_eq!(examples::loomis_whitney(4).num_vars(), 4);
        assert_eq!(examples::loomis_whitney(4).atoms().len(), 4);
        assert_eq!(examples::clique(4).atoms().len(), 6);
        assert_eq!(examples::clique(4).num_vars(), 4);
        assert_eq!(examples::chain_with_guard().num_vars(), 4);
        assert_eq!(examples::example_one().atoms().len(), 5);
        assert_eq!(examples::star(3).num_vars(), 4);
        // self-join: all clique atoms share the relation name E
        assert!(examples::clique(3).atoms().iter().all(|a| a.name == "E"));
    }

    #[test]
    fn error_display() {
        assert!(QueryError::EmptyQuery.to_string().contains("no atoms"));
        assert!(QueryError::UnknownVariable("X".into())
            .to_string()
            .contains('X'));
        assert!(QueryError::UnknownAtom("R".into())
            .to_string()
            .contains('R'));
        let e = QueryError::DuplicateVarInAtom {
            atom: "R".into(),
            var: "A".into(),
        };
        assert!(e.to_string().contains('R') && e.to_string().contains('A'));
    }
}
