//! Degree constraints (Definition 1 of the paper) and the constraint dependency graph
//! `G_DC` (Definition 3).
//!
//! A degree constraint `(X, Y, N_{Y|X})` asserts that for every binding of the
//! variables `X`, the guard relation contains at most `N_{Y|X}` distinct bindings of
//! the variables `Y`. Cardinality constraints are the special case `X = ∅`; functional
//! dependencies the special case `N_{Y|X} = 1`.

use crate::query::{ConjunctiveQuery, QueryError};
use crate::VarId;

/// A degree constraint `(X, Y, N_{Y|X})`, optionally pinned to a guard atom.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeConstraint {
    /// The conditioning variable set `X` (sorted, strict subset of `Y`).
    pub x: Vec<VarId>,
    /// The constrained variable set `Y` (sorted, strict superset of `X`).
    pub y: Vec<VarId>,
    /// The degree bound `N_{Y|X}` (a tuple count, so an integer ≥ 0).
    pub bound: u64,
    /// Index of the atom that guards this constraint, if pinned. When `None`, any atom
    /// whose variable set contains `Y` may guard it (see
    /// [`DegreeConstraint::candidate_guards`]).
    pub guard: Option<usize>,
}

impl DegreeConstraint {
    /// Create a degree constraint; `x` must be a strict subset of `y`.
    pub fn new(mut x: Vec<VarId>, mut y: Vec<VarId>, bound: u64) -> Self {
        x.sort_unstable();
        x.dedup();
        y.sort_unstable();
        y.dedup();
        assert!(
            x.iter().all(|v| y.contains(v)) && x.len() < y.len(),
            "X must be a strict subset of Y (got X={x:?}, Y={y:?})"
        );
        DegreeConstraint {
            x,
            y,
            bound,
            guard: None,
        }
    }

    /// A cardinality constraint `|R_F| <= bound` on the variable set `y`.
    pub fn cardinality(y: Vec<VarId>, bound: u64) -> Self {
        Self::new(Vec::new(), y, bound)
    }

    /// A functional dependency `X → Y` (degree bound 1 on `X ∪ Y` given `X`).
    pub fn functional_dependency(x: Vec<VarId>, y: Vec<VarId>) -> Self {
        let mut full_y = x.clone();
        full_y.extend(y);
        Self::new(x, full_y, 1)
    }

    /// Pin the constraint to a guard atom.
    pub fn with_guard(mut self, atom_index: usize) -> Self {
        self.guard = Some(atom_index);
        self
    }

    /// Whether this is a cardinality constraint (`X = ∅`).
    pub fn is_cardinality(&self) -> bool {
        self.x.is_empty()
    }

    /// Whether this is a functional dependency (`N_{Y|X} = 1` with `X ≠ ∅`).
    pub fn is_fd(&self) -> bool {
        self.bound == 1 && !self.x.is_empty()
    }

    /// Whether this is a *simple* FD `A_i → A_j` (singleton `X`, `|Y − X| = 1`,
    /// bound 1) — the class for which Corollary 5.3 applies.
    pub fn is_simple_fd(&self) -> bool {
        self.is_fd() && self.x.len() == 1 && self.y.len() == 2
    }

    /// `Y − X`, the variables whose multiplicity is bounded.
    pub fn y_minus_x(&self) -> Vec<VarId> {
        self.y
            .iter()
            .copied()
            .filter(|v| !self.x.contains(v))
            .collect()
    }

    /// `log2(N_{Y|X})` — the coefficient `n_{Y|X}` used by every LP bound. A bound of
    /// zero maps to `-inf`-avoidance: `log2(0)` is treated as `0` tuples ⇒ the query
    /// output is empty, so callers should special-case `bound == 0`; here we return
    /// `f64::NEG_INFINITY` to make that impossible to miss.
    pub fn log_bound(&self) -> f64 {
        if self.bound == 0 {
            f64::NEG_INFINITY
        } else {
            (self.bound as f64).log2()
        }
    }

    /// Atoms of `query` whose variable set contains `Y` (candidate guards).
    pub fn candidate_guards(&self, query: &ConjunctiveQuery) -> Vec<usize> {
        (0..query.atoms().len())
            .filter(|&i| {
                let f = query.atom_var_set(i);
                self.y.iter().all(|v| f.contains(v))
            })
            .collect()
    }
}

/// A set of degree constraints `DC`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<DegreeConstraint>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of constraints.
    pub fn from_constraints(constraints: Vec<DegreeConstraint>) -> Self {
        ConstraintSet { constraints }
    }

    /// Cardinality constraints for the named atoms of `query`, guarded by those atoms.
    ///
    /// This is the classical AGM setting: one `|R_F| ≤ N_F` per atom.
    pub fn all_cardinalities(
        query: &ConjunctiveQuery,
        sizes: &[(&str, u64)],
    ) -> Result<Self, QueryError> {
        let mut out = ConstraintSet::new();
        for &(name, bound) in sizes {
            let idx = query.atom_index(name)?;
            out.push(DegreeConstraint::cardinality(query.atom_var_set(idx), bound).with_guard(idx));
        }
        Ok(out)
    }

    /// Add a constraint.
    pub fn push(&mut self, c: DegreeConstraint) {
        self.constraints.push(c);
    }

    /// Add a constraint given variable *names* relative to `query`.
    pub fn push_named(
        &mut self,
        query: &ConjunctiveQuery,
        x: &[&str],
        y: &[&str],
        bound: u64,
    ) -> Result<(), QueryError> {
        let xv: Vec<VarId> = x
            .iter()
            .map(|n| query.var_id(n))
            .collect::<Result<_, _>>()?;
        let mut yv: Vec<VarId> = y
            .iter()
            .map(|n| query.var_id(n))
            .collect::<Result<_, _>>()?;
        yv.extend(xv.iter().copied());
        self.push(DegreeConstraint::new(xv, yv, bound));
        Ok(())
    }

    /// The constraints.
    pub fn constraints(&self) -> &[DegreeConstraint] {
        &self.constraints
    }

    /// Iterator over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &DegreeConstraint> {
        self.constraints.iter()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Whether the set contains only cardinality constraints (the AGM regime, first
    /// row of Table 1).
    pub fn cardinalities_only(&self) -> bool {
        self.constraints.iter().all(|c| c.is_cardinality())
    }

    /// Whether the set contains only cardinality constraints and simple FDs (the
    /// regime of Corollary 5.3).
    pub fn cardinalities_and_simple_fds_only(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| c.is_cardinality() || c.is_simple_fd())
    }

    /// The constraint dependency graph `G_DC` (Definition 3) as an adjacency list over
    /// `n` variables: an edge `x → y` for every constraint `(X, Y)` and every
    /// `x ∈ X`, `y ∈ Y − X`.
    pub fn constraint_graph(&self, n: usize) -> Vec<Vec<VarId>> {
        constraint_graph(self, n)
    }

    /// Whether `G_DC` is acyclic (Definition 3).
    pub fn is_acyclic(&self, n: usize) -> bool {
        self.compatible_order(n).is_some()
    }

    /// A variable order compatible with `DC` (a topological order of `G_DC`), if one
    /// exists. Cardinality constraints impose no edges, so with only cardinality
    /// constraints any order is compatible.
    pub fn compatible_order(&self, n: usize) -> Option<Vec<VarId>> {
        let adj = self.constraint_graph(n);
        // Kahn's algorithm.
        let mut indeg = vec![0usize; n];
        for out in &adj {
            for &y in out {
                indeg[y] += 1;
            }
        }
        let mut queue: Vec<VarId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            let mut newly: Vec<VarId> = Vec::new();
            for &y in &adj[v] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    newly.push(y);
                }
            }
            newly.sort_unstable();
            queue.extend(newly);
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the order `order` (a permutation of `0..n`) is compatible with `DC`:
    /// for every constraint, every variable of `X` precedes every variable of `Y − X`.
    pub fn order_is_compatible(&self, order: &[VarId]) -> bool {
        let pos: Vec<usize> = {
            let mut p = vec![usize::MAX; order.len()];
            for (i, &v) in order.iter().enumerate() {
                if v >= p.len() || p[v] != usize::MAX {
                    return false;
                }
                p[v] = i;
            }
            p
        };
        self.constraints.iter().all(|c| {
            c.x.iter().all(|&x| {
                c.y_minus_x()
                    .iter()
                    .all(|&y| pos.get(x).copied().unwrap_or(usize::MAX) < pos[y])
            })
        })
    }
}

/// The constraint dependency graph `G_DC` as an adjacency list (see
/// [`ConstraintSet::constraint_graph`]).
pub fn constraint_graph(dc: &ConstraintSet, n: usize) -> Vec<Vec<VarId>> {
    let mut adj: Vec<Vec<VarId>> = vec![Vec::new(); n];
    for c in dc.iter() {
        for &x in &c.x {
            for y in c.y_minus_x() {
                if !adj[x].contains(&y) {
                    adj[x].push(y);
                }
            }
        }
    }
    for out in &mut adj {
        out.sort_unstable();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples;

    #[test]
    fn constraint_classification() {
        let card = DegreeConstraint::cardinality(vec![0, 1], 100);
        assert!(card.is_cardinality());
        assert!(!card.is_fd());
        assert_eq!(card.y_minus_x(), vec![0, 1]);
        assert!((card.log_bound() - 100f64.log2()).abs() < 1e-12);

        let fd = DegreeConstraint::functional_dependency(vec![0], vec![1]);
        assert!(fd.is_fd());
        assert!(fd.is_simple_fd());
        assert!(!fd.is_cardinality());
        assert_eq!(fd.y, vec![0, 1]);
        assert_eq!(fd.bound, 1);
        assert_eq!(fd.log_bound(), 0.0);

        let wide_fd = DegreeConstraint::functional_dependency(vec![0, 1], vec![2]);
        assert!(wide_fd.is_fd());
        assert!(!wide_fd.is_simple_fd());

        let deg = DegreeConstraint::new(vec![0], vec![0, 1], 5);
        assert!(!deg.is_cardinality());
        assert!(!deg.is_fd());

        let zero = DegreeConstraint::cardinality(vec![0], 0);
        assert_eq!(zero.log_bound(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn x_must_be_strict_subset() {
        let _ = DegreeConstraint::new(vec![0, 1], vec![0, 1], 3);
    }

    #[test]
    fn candidate_guards_found() {
        let q = examples::triangle();
        let c = DegreeConstraint::cardinality(vec![0, 1], 10); // {A,B}: only atom R
        assert_eq!(c.candidate_guards(&q), vec![0]);
        let c2 = DegreeConstraint::new(vec![1], vec![1, 2], 5); // {B,C}: only atom S
        assert_eq!(c2.candidate_guards(&q), vec![1]);
        let c3 = DegreeConstraint::cardinality(vec![0], 10); // {A}: atoms R and T
        assert_eq!(c3.candidate_guards(&q), vec![0, 2]);
    }

    #[test]
    fn all_cardinalities_builder() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 10), ("S", 20), ("T", 30)]).unwrap();
        assert_eq!(dc.len(), 3);
        assert!(dc.cardinalities_only());
        assert!(dc.cardinalities_and_simple_fds_only());
        assert!(dc.is_acyclic(3));
        assert_eq!(dc.constraints()[0].guard, Some(0));
        assert!(ConstraintSet::all_cardinalities(&q, &[("Z", 1)]).is_err());
    }

    #[test]
    fn constraint_graph_and_acyclicity() {
        let q = examples::chain_with_guard(); // A, B, C, D
                                              // constraints from the paper's example (63): N_A, N_{B|A}, N_{C|B}, N_{AD|C}
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 10).unwrap();
        dc.push_named(&q, &["A"], &["B"], 5).unwrap();
        dc.push_named(&q, &["B"], &["C"], 5).unwrap();
        dc.push_named(&q, &["C"], &["A", "D"], 5).unwrap();
        let g = dc.constraint_graph(4);
        let a = q.var_id("A").unwrap();
        let b = q.var_id("B").unwrap();
        let c = q.var_id("C").unwrap();
        let d = q.var_id("D").unwrap();
        assert_eq!(g[a], vec![b]);
        assert_eq!(g[b], vec![c]);
        assert!(g[c].contains(&a) && g[c].contains(&d));
        // C -> A and A -> B -> C: cyclic
        assert!(!dc.is_acyclic(4));
        assert!(dc.compatible_order(4).is_none());

        // Drop the cyclic edge by replacing (C, {A,D}) with (C, {D}): acyclic again.
        let mut dc2 = ConstraintSet::new();
        dc2.push_named(&q, &[], &["A"], 10).unwrap();
        dc2.push_named(&q, &["A"], &["B"], 5).unwrap();
        dc2.push_named(&q, &["B"], &["C"], 5).unwrap();
        dc2.push_named(&q, &["C"], &["D"], 5).unwrap();
        assert!(dc2.is_acyclic(4));
        let order = dc2.compatible_order(4).unwrap();
        assert!(dc2.order_is_compatible(&order));
        assert_eq!(order, vec![a, b, c, d]);
        // an incompatible order is rejected
        assert!(!dc2.order_is_compatible(&[d, c, b, a]));
        // malformed orders are rejected rather than panicking
        assert!(!dc2.order_is_compatible(&[0, 0, 1, 2]));
    }

    #[test]
    fn cardinality_only_sets_are_trivially_acyclic() {
        let q = examples::clique(4);
        let dc = ConstraintSet::all_cardinalities(&q, &[("E", 100)]).unwrap();
        assert!(dc.is_acyclic(q.num_vars()));
        let order = dc.compatible_order(q.num_vars()).unwrap();
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn push_named_unknown_variable_errors() {
        let q = examples::triangle();
        let mut dc = ConstraintSet::new();
        assert!(dc.push_named(&q, &["A"], &["Z"], 5).is_err());
        assert!(dc.push_named(&q, &["Z"], &["A"], 5).is_err());
        assert!(dc.is_empty());
    }
}
