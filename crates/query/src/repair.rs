//! Acyclic constraint repair (Proposition 5.2 and Corollary 5.3 of the paper).
//!
//! If the constraint dependency graph `G_DC` is cyclic, Algorithm 3 (backtracking
//! search) cannot be applied directly. Proposition 5.2 shows that whenever the
//! worst-case output size is finite there exists an *acyclic* constraint set `DC'`
//! such that (i) every database satisfying `DC` satisfies `DC'` and (ii) the
//! worst-case output size under `DC'` is still finite. The construction weakens one
//! constraint at a time — replacing `(X, Y, N)` by `(X, Y \ {y}, N)` for a carefully
//! chosen `y` on a cycle — while keeping every variable *bound* (reachable from
//! cardinality constraints by chasing constraints).

use crate::constraints::{ConstraintSet, DegreeConstraint};
use crate::VarId;
use std::fmt;

/// Errors raised by constraint repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// Some variable is not bound: the worst-case output size is infinite (Claim 1 of
    /// Proposition 5.2), so no acyclic repair with a finite bound exists.
    OutputInfinite {
        /// The unbound variables.
        unbound: Vec<VarId>,
    },
    /// The repair procedure could not find a constraint to weaken on some cycle. This
    /// indicates a violation of Proposition 5.2's preconditions (it cannot happen when
    /// the output is finite).
    Stuck,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::OutputInfinite { unbound } => write!(
                f,
                "worst-case output size is infinite: unbound variables {unbound:?}"
            ),
            RepairError::Stuck => write!(f, "constraint repair could not break a cycle"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Compute the set of *bound* variables (Proposition 5.2): start with nothing and
/// repeatedly apply "if all of `X` is bound then all of `Y` is bound". Cardinality
/// constraints (`X = ∅`) seed the fixpoint.
pub fn bound_variables(num_vars: usize, dc: &ConstraintSet) -> Vec<bool> {
    let mut bound = vec![false; num_vars];
    loop {
        let mut changed = false;
        for c in dc.iter() {
            if c.x.iter().all(|&x| bound[x]) {
                for &y in &c.y {
                    if !bound[y] {
                        bound[y] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return bound;
        }
    }
}

/// Whether the worst-case output size is finite, i.e. every variable is bound
/// (Claim 1 of Proposition 5.2).
pub fn is_output_finite(num_vars: usize, dc: &ConstraintSet) -> bool {
    bound_variables(num_vars, dc).iter().all(|&b| b)
}

/// Find one directed cycle in the adjacency list `adj`, returned as a vertex sequence
/// `v0 → v1 → … → vk → v0` (without repeating `v0` at the end). Returns `None` if the
/// graph is acyclic.
fn find_cycle(adj: &[Vec<VarId>]) -> Option<Vec<VarId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];

    fn dfs(
        v: usize,
        adj: &[Vec<VarId>],
        color: &mut [Color],
        parent: &mut [usize],
    ) -> Option<(usize, usize)> {
        color[v] = Color::Gray;
        for &u in &adj[v] {
            match color[u] {
                Color::Gray => return Some((v, u)), // back edge v -> u closes a cycle
                Color::White => {
                    parent[u] = v;
                    if let Some(found) = dfs(u, adj, color, parent) {
                        return Some(found);
                    }
                }
                Color::Black => {}
            }
        }
        color[v] = Color::Black;
        None
    }

    for s in 0..n {
        if color[s] == Color::White {
            if let Some((v, u)) = dfs(s, adj, &mut color, &mut parent) {
                // walk back from v to u to recover the cycle u -> ... -> v -> u
                let mut cycle = vec![v];
                let mut cur = v;
                while cur != u {
                    cur = parent[cur];
                    cycle.push(cur);
                }
                cycle.reverse();
                return Some(cycle);
            }
        }
    }
    None
}

/// Repair `dc` into an acyclic constraint set `DC'` per Proposition 5.2.
///
/// The returned set satisfies: (i) any database satisfying `dc` satisfies the result
/// (every weakened constraint is implied by the original, with the same guard); and
/// (ii) every variable is still bound, so the worst-case output size remains finite.
/// Requires the output size under `dc` to be finite in the first place.
///
/// The repair is *sound* but not necessarily *bound-optimal*: searching for the
/// acyclic `DC'` with the smallest worst-case output size (the "best acyclic
/// constraint set" discussed after Proposition 5.2) requires evaluating the size bound
/// and is provided by `wcoj-bounds::modular::best_acyclic_repair`.
pub fn repair_to_acyclic(
    dc: &ConstraintSet,
    num_vars: usize,
) -> Result<ConstraintSet, RepairError> {
    let bound = bound_variables(num_vars, dc);
    if let Some(_unbound) = bound.iter().position(|&b| !b) {
        let unbound: Vec<VarId> = (0..num_vars).filter(|&v| !bound[v]).collect();
        return Err(RepairError::OutputInfinite { unbound });
    }

    let mut current: Vec<DegreeConstraint> = dc.constraints().to_vec();
    loop {
        let cur_set = ConstraintSet::from_constraints(current.clone());
        let adj = cur_set.constraint_graph(num_vars);
        let Some(cycle) = find_cycle(&adj) else {
            return Ok(cur_set);
        };
        // Try every (constraint, y) pair that realizes an edge of the cycle; weaken it
        // to (X, Y \ {y}) (or drop the constraint if Y \ {y} = X) and keep the change
        // if all variables remain bound.
        let mut applied = false;
        'outer: for k in 0..cycle.len() {
            let x = cycle[k];
            let y = cycle[(k + 1) % cycle.len()];
            for (ci, c) in current.iter().enumerate() {
                let realizes_edge = c.x.contains(&x) && c.y_minus_x().contains(&y);
                if !realizes_edge {
                    continue;
                }
                let mut candidate = current.clone();
                let new_y: Vec<VarId> = c.y.iter().copied().filter(|&v| v != y).collect();
                if new_y.len() > c.x.len() {
                    let mut weakened = DegreeConstraint::new(c.x.clone(), new_y, c.bound);
                    weakened.guard = c.guard;
                    candidate[ci] = weakened;
                } else {
                    candidate.remove(ci);
                }
                let cand_set = ConstraintSet::from_constraints(candidate.clone());
                if is_output_finite(num_vars, &cand_set) {
                    current = candidate;
                    applied = true;
                    break 'outer;
                }
            }
        }
        if !applied {
            return Err(RepairError::Stuck);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples;

    /// The constraint set of the paper's equation (63): N_A (card), N_{B|A}, N_{C|B},
    /// N_{AD|C}. The chain A→B→C→{A,D} is cyclic, and removing any constraint makes
    /// some variable unbound — the example the paper uses to motivate careful repair.
    fn chain_dc() -> (usize, ConstraintSet) {
        let q = examples::chain_with_guard();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 100).unwrap();
        dc.push_named(&q, &["A"], &["B"], 10).unwrap();
        dc.push_named(&q, &["B"], &["C"], 10).unwrap();
        dc.push_named(&q, &["C"], &["A", "D"], 10).unwrap();
        (q.num_vars(), dc)
    }

    #[test]
    fn bound_variables_fixpoint() {
        let (n, dc) = chain_dc();
        let b = bound_variables(n, &dc);
        assert!(b.iter().all(|&x| x));
        assert!(is_output_finite(n, &dc));

        // Without the cardinality constraint on A, nothing is bound.
        let dc2 = ConstraintSet::from_constraints(dc.constraints()[1..].to_vec());
        let b2 = bound_variables(n, &dc2);
        assert!(b2.iter().all(|&x| !x));
        assert!(!is_output_finite(n, &dc2));
    }

    #[test]
    fn find_cycle_smoke() {
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let cycle = find_cycle(&adj).unwrap();
        assert_eq!(cycle.len(), 3);
        // consecutive vertices must be edges, and it must close
        for k in 0..cycle.len() {
            let a = cycle[k];
            let b = cycle[(k + 1) % cycle.len()];
            assert!(adj[a].contains(&b), "not an edge: {a}->{b}");
        }
        assert!(find_cycle(&[vec![1], vec![], vec![1]]).is_none());
    }

    #[test]
    fn repair_produces_acyclic_and_finite_set() {
        let (n, dc) = chain_dc();
        assert!(!dc.is_acyclic(n));
        let repaired = repair_to_acyclic(&dc, n).unwrap();
        assert!(repaired.is_acyclic(n));
        assert!(is_output_finite(n, &repaired));
        // weakening never invents new constraints
        assert!(repaired.len() <= dc.len());
    }

    #[test]
    fn repair_of_already_acyclic_set_is_identity() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 5), ("S", 5), ("T", 5)]).unwrap();
        let repaired = repair_to_acyclic(&dc, 3).unwrap();
        assert_eq!(repaired, dc);
    }

    #[test]
    fn repair_rejects_infinite_output() {
        let q = examples::triangle();
        // a single degree constraint with no cardinality anywhere: nothing is bound
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &["A"], &["B"], 5).unwrap();
        let err = repair_to_acyclic(&dc, 3).unwrap_err();
        match err {
            RepairError::OutputInfinite { unbound } => {
                assert_eq!(unbound, vec![0, 1, 2]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn simple_fd_cycles_are_broken() {
        // Corollary 5.3 setting: cardinalities plus the simple-FD cycle A -> B, B -> A.
        let q = examples::triangle();
        let mut dc = ConstraintSet::all_cardinalities(&q, &[("R", 5), ("S", 5), ("T", 5)]).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1).unwrap();
        dc.push_named(&q, &["B"], &["A"], 1).unwrap();
        assert!(!dc.is_acyclic(3));
        let repaired = repair_to_acyclic(&dc, 3).unwrap();
        assert!(repaired.is_acyclic(3));
        // the cardinality constraints must survive untouched
        assert!(repaired.iter().filter(|c| c.is_cardinality()).count() >= 3);
    }

    #[test]
    fn error_display() {
        let e = RepairError::OutputInfinite { unbound: vec![2] };
        assert!(e.to_string().contains('2'));
        assert!(!RepairError::Stuck.to_string().is_empty());
    }
}
