//! Databases: a catalog of named relations bound to the atoms of a query, shared
//! per-domain string dictionaries with typed loaders, plus verification that a
//! database satisfies a set of degree constraints (`D ⊨ DC`).

use crate::constraints::{ConstraintSet, DegreeConstraint};
use crate::query::{ConjunctiveQuery, QueryError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use wcoj_storage::typed::{encode_column, TypedRow};
use wcoj_storage::{
    next_stamp, AccessCache, AttrType, DeltaRelation, Dictionary, Relation, Schema, StorageError,
    Tuple, TypedValue,
};

/// Errors raised when binding a database to a query or verifying constraints.
#[derive(Debug, Clone, PartialEq)]
pub enum DatabaseError {
    /// No relation is stored under the given atom name.
    MissingRelation(String),
    /// The stored relation's arity does not match the atom's arity.
    ArityMismatch {
        /// The atom (relation) name.
        atom: String,
        /// Arity expected by the query atom.
        expected: usize,
        /// Arity of the stored relation.
        found: usize,
    },
    /// A degree constraint has no candidate guard atom in the query.
    NoGuard {
        /// Index of the constraint within its [`ConstraintSet`].
        constraint: usize,
    },
    /// Two atoms bind the same query variable to attributes whose types (or, for
    /// string attributes, dictionary domains) disagree — the join would compare
    /// codes from different value spaces.
    VarTypeMismatch {
        /// The query variable's name.
        var: String,
        /// How the variable is typed where it was first bound (e.g. `Str[user]`).
        first: String,
        /// The conflicting typing, with the atom that introduced it.
        conflict: String,
    },
    /// A delta-path typed load targets a relation whose columns were interned
    /// into different dictionary domains than the incoming batch would use —
    /// appending would mix codes from two value spaces.
    DomainMismatch {
        /// The target relation.
        relation: String,
        /// The attribute whose domains disagree.
        attr: String,
        /// The domain the stored column's codes were interned into.
        loaded: String,
        /// The domain the incoming batch would intern into.
        current: String,
    },
    /// A cell of a CSV/TSV load could not be parsed.
    Parse {
        /// 1-based line number within the input text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A storage-level error.
    Storage(StorageError),
    /// A query-level error.
    Query(QueryError),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::MissingRelation(r) => write!(f, "missing relation `{r}`"),
            DatabaseError::ArityMismatch {
                atom,
                expected,
                found,
            } => write!(
                f,
                "relation `{atom}` has arity {found}, the query atom expects {expected}"
            ),
            DatabaseError::NoGuard { constraint } => {
                write!(f, "degree constraint #{constraint} has no guard atom")
            }
            DatabaseError::VarTypeMismatch {
                var,
                first,
                conflict,
            } => write!(
                f,
                "variable `{var}` is bound to {first} in one atom and {conflict} in another"
            ),
            DatabaseError::DomainMismatch {
                relation,
                attr,
                loaded,
                current,
            } => write!(
                f,
                "relation `{relation}` attribute `{attr}` was interned into domain `{loaded}`, \
                 the incoming batch would use `{current}`"
            ),
            DatabaseError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DatabaseError::Storage(e) => write!(f, "storage error: {e}"),
            DatabaseError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

impl From<StorageError> for DatabaseError {
    fn from(e: StorageError) -> Self {
        DatabaseError::Storage(e)
    }
}

impl From<QueryError> for DatabaseError {
    fn from(e: QueryError) -> Self {
        DatabaseError::Query(e)
    }
}

/// How one query variable is typed by the stored relations bound to it: its
/// [`AttrType`] and, for string variables, the dictionary domain its codes live in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarBinding {
    /// The variable's value type.
    pub ty: AttrType,
    /// The shared-dictionary domain (`Some` exactly when `ty == AttrType::Str`).
    pub domain: Option<String>,
}

impl VarBinding {
    fn describe(&self) -> String {
        match &self.domain {
            Some(d) => format!("{}[{d}]", self.ty),
            None => self.ty.to_string(),
        }
    }
}

/// Encoded columns plus the per-column intern domains — what the typed loaders'
/// shared validation/encode front half produces.
type EncodedColumns = (Vec<Vec<u64>>, Vec<Option<String>>);

/// How one query atom's data is accessed by the execution layer: a borrowed
/// static relation, or a live delta log. In both cases the stored columns bind
/// to the atom's variables **positionally** — no per-query rename or copy, and
/// access structures built over the stored relation are reusable across
/// queries (the premise of the access-structure cache).
#[derive(Debug)]
pub enum AtomSource<'a> {
    /// A static relation, borrowed from the catalog.
    Static(&'a Relation),
    /// A delta-backed relation, queried live through its union cursor.
    Delta(&'a DeltaRelation),
}

/// A database instance: a catalog of named [`Relation`]s plus one shared string
/// [`Dictionary`] per attribute *domain*.
///
/// Relations are matched to query atoms *by name and positionally*: the atom
/// `R(A, C)` binds the first column of the stored relation `R` to variable `A` and the
/// second to `C`, regardless of the stored attribute names. This is what allows
/// self-joins such as the clique query `E(X0,X1), E(X0,X2), E(X1,X2)` over a single
/// stored edge relation.
///
/// # Domains and dictionaries
///
/// String attributes are interned **once per database** into per-domain
/// dictionaries. By default an attribute's domain is its own name, so relations
/// sharing attribute names (the natural-join convention used throughout the
/// workspace) automatically share a dictionary — `R(A,B)` and `S(B,C)` intern `B`
/// values into the same table, which is what makes their codes joinable. When
/// differently-named attributes hold the same kind of value (e.g. the `src` and
/// `dst` endpoints of a graph's edge relation, self-joined by clique queries), map
/// them onto one domain with [`Database::set_domain`] **before** loading.
/// # Snapshots
///
/// `Database` is `Clone`, and cloning **is** the snapshot mechanism: static
/// relations and dictionaries are held behind [`Arc`]s, and
/// [`DeltaRelation`]'s runs and live-set are `Arc`-shared too, so a clone pins
/// the current visible state of every relation in O(catalog) without copying
/// tuple data. Mutating either side afterwards copies-on-write only what it
/// touches. [`Database::snapshot`] wraps a clone as a read-only
/// [`crate::snapshot::Snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Arc<Relation>>,
    /// Delta-backed (live) relations; a name lives in exactly one of
    /// `relations` / `deltas`. See [`wcoj_storage::delta`].
    deltas: HashMap<String, DeltaRelation>,
    /// One shared dictionary per domain name (behind `Arc` so snapshots pin
    /// the interned table without copying it; loads copy-on-write).
    dicts: HashMap<String, Arc<Dictionary>>,
    /// Attribute-name → domain-name overrides (attributes default to themselves).
    domains: HashMap<String, String>,
    /// For relations loaded through the typed loaders: the domain each column's
    /// codes were **actually interned into** (per column; `None` for Int columns).
    /// [`Database::var_bindings`] validates against these, so remapping an
    /// attribute's domain *after* loading cannot misrepresent where existing codes
    /// live. Relations stored via the raw [`Database::insert`] have no record.
    loaded_domains: HashMap<String, Vec<Option<String>>>,
    /// Per-static-relation identity stamps ([`next_stamp`]): refreshed whenever a
    /// name is (re)bound to a relation, part of every cache key, so replacing a
    /// relation can never produce a stale cache hit. Delta-backed relations
    /// carry their freshness in their run ids instead.
    rel_stamps: HashMap<String, u64>,
    /// The access-structure cache, shared across clones of this database (the
    /// keys are identity-stamped, so sharing is safe — clones that diverge
    /// simply stop hitting each other's entries).
    cache: Arc<AccessCache>,
    /// Whether this instance is a pinned snapshot clone (set by
    /// [`crate::snapshot::Snapshot::pin`]). Snapshots share the writer's
    /// access cache but must not claim the live **head slot** for their frozen
    /// delta views — see `wcoj_core`'s delta-view caching — or a long-pinned
    /// snapshot and the advancing head evict each other (the E9.4 thrash).
    snapshot_pinned: bool,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the relation stored under `name`, already encoded.
    /// Any intern-time domain record of a previously loaded `name` is dropped: the
    /// caller owns the encoding of raw inserts. Replaces a delta-backed relation
    /// of the same name.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        self.loaded_domains.remove(&name);
        self.deltas.remove(&name);
        self.rel_stamps.insert(name.clone(), next_stamp());
        self.relations.insert(name, Arc::new(relation));
    }

    /// Insert (or replace) a delta-backed relation under `name` (already
    /// encoded, like [`Database::insert`]).
    pub fn insert_delta_relation(&mut self, name: impl Into<String>, delta: DeltaRelation) {
        let name = name.into();
        self.loaded_domains.remove(&name);
        self.relations.remove(&name);
        self.rel_stamps.remove(&name);
        self.deltas.insert(name, delta);
    }

    /// Convert the static relation stored under `name` into a delta-backed one
    /// (the existing rows become the base run). No-op if already delta-backed.
    /// Typed-load domain records are preserved — the encoding is unchanged.
    pub fn to_delta(&mut self, name: &str) -> Result<(), DatabaseError> {
        if self.deltas.contains_key(name) {
            return Ok(());
        }
        let rel = self
            .relations
            .remove(name)
            .ok_or_else(|| DatabaseError::MissingRelation(name.to_string()))?;
        // reclaim the allocation when this catalog is the sole owner; a
        // snapshot holding the old static binding keeps its own copy
        let rel = Arc::try_unwrap(rel).unwrap_or_else(|shared| (*shared).clone());
        self.rel_stamps.remove(name);
        self.deltas
            .insert(name.to_string(), DeltaRelation::from_relation(rel));
        Ok(())
    }

    /// The identity stamp of the static relation stored under `name` (assigned
    /// when the name was last bound by [`Database::insert`]; 0 if `name` is not
    /// a static relation). Cache keys include it, so rebinding a name keys new
    /// builds away from entries of the replaced relation.
    pub fn relation_stamp(&self, name: &str) -> u64 {
        self.rel_stamps.get(name).copied().unwrap_or(0)
    }

    /// The access-structure cache shared by executions over this database (and
    /// its clones). See [`wcoj_storage::cache`] for keying and eviction.
    pub fn access_cache(&self) -> &AccessCache {
        &self.cache
    }

    /// Replace this instance's cache with a fresh, empty one of `bytes` budget
    /// (`0` disables caching). Only this instance is switched — clones sharing
    /// the previous cache keep it.
    pub fn set_cache_budget(&mut self, bytes: usize) {
        self.cache = Arc::new(AccessCache::with_budget(bytes));
    }

    /// Pin the current visible state of every relation as a read-only
    /// [`crate::snapshot::Snapshot`]. O(catalog): tuple data, runs, live-sets,
    /// and dictionaries are `Arc`-shared, not copied — see the
    /// [struct docs](Database#snapshots). The snapshot keeps this database's
    /// access-structure cache handle, so reads through it hit (and seed)
    /// the same cache; identity-stamped keys make that safe.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        crate::snapshot::Snapshot::pin(self)
    }

    /// Whether this instance is a pinned snapshot clone (reads through it must
    /// not claim the live head's cache slots). See
    /// [`crate::snapshot::Snapshot`].
    pub fn is_snapshot(&self) -> bool {
        self.snapshot_pinned
    }

    /// Mark this instance as a pinned snapshot clone.
    pub(crate) fn mark_snapshot(&mut self) {
        self.snapshot_pinned = true;
    }

    /// The modification epoch of the relation stored under `name`: the delta
    /// log's [`DeltaRelation::epoch`] for delta-backed relations, the binding
    /// stamp for static ones, `None` for unknown names. Equal epochs imply
    /// identical visible state — the optimistic-concurrency check used by
    /// compare-and-set writers.
    pub fn relation_epoch(&self, name: &str) -> Option<u64> {
        if let Some(delta) = self.deltas.get(name) {
            return Some(delta.epoch());
        }
        self.rel_stamps.get(name).copied()
    }

    /// The delta log stored under `name`, if the relation is delta-backed.
    pub fn delta(&self, name: &str) -> Option<&DeltaRelation> {
        self.deltas.get(name)
    }

    /// Mutable access to the delta log stored under `name`.
    pub fn delta_mut(&mut self, name: &str) -> Option<&mut DeltaRelation> {
        self.deltas.get_mut(name)
    }

    fn require_delta(&mut self, name: &str) -> Result<&mut DeltaRelation, DatabaseError> {
        if !self.deltas.contains_key(name) {
            self.to_delta(name)?; // converts a static relation (or errors)
        }
        Ok(self.deltas.get_mut(name).expect("just ensured"))
    }

    /// Insert one (already-encoded) tuple into relation `name` through the
    /// delta-log path — amortized O(arity + runs · log n), versus the O(n) of
    /// rebuilding a sorted [`Relation`]. A static relation stored under `name`
    /// is converted to delta-backed (its rows become the base run) on first use.
    /// Returns whether the tuple was newly inserted.
    pub fn insert_delta(&mut self, name: &str, tuple: Tuple) -> Result<bool, DatabaseError> {
        Ok(self.require_delta(name)?.insert(tuple)?)
    }

    /// Delete one (already-encoded) tuple from relation `name` through the
    /// delta-log path (a tombstone append; same cost shape as
    /// [`Database::insert_delta`], converting a static relation on first use).
    /// Returns whether the tuple was live.
    pub fn delete(&mut self, name: &str, tuple: &[u64]) -> Result<bool, DatabaseError> {
        Ok(self.require_delta(name)?.delete(tuple)?)
    }

    /// Seal relation `name`'s append buffer into a sorted delta run (plus
    /// size-tiered compaction). Queries work without sealing — the buffer is
    /// collapsed into an ephemeral run at access-build time — but a sealed run
    /// is collapsed once instead of per query. A no-op on a static relation
    /// (maintenance calls never convert storage kinds); errors only if `name`
    /// is unknown.
    pub fn seal(&mut self, name: &str) -> Result<(), DatabaseError> {
        if let Some(delta) = self.deltas.get_mut(name) {
            delta.seal();
            Ok(())
        } else if self.relations.contains_key(name) {
            Ok(()) // static: nothing buffered, nothing to seal
        } else {
            Err(DatabaseError::MissingRelation(name.to_string()))
        }
    }

    /// Fully compact relation `name`: merge every delta run (and the buffer)
    /// back into a single tombstone-free base run, using `threads` scoped
    /// workers for the merge passes. A no-op on a static relation (maintenance
    /// calls never convert storage kinds); errors only if `name` is unknown.
    pub fn compact(&mut self, name: &str, threads: usize) -> Result<(), DatabaseError> {
        if let Some(delta) = self.deltas.get_mut(name) {
            delta.compact(threads);
            Ok(())
        } else if self.relations.contains_key(name) {
            Ok(()) // static: already a single canonical "run"
        } else {
            Err(DatabaseError::MissingRelation(name.to_string()))
        }
    }

    /// Map attribute `attr` onto dictionary domain `domain` for all **subsequent**
    /// typed loads. Attributes not remapped use their own name as the domain.
    /// Relations already loaded keep the domains their codes were interned into
    /// (recorded per column at load time), so a late remap cannot silently change
    /// what existing codes mean.
    pub fn set_domain(&mut self, attr: impl Into<String>, domain: impl Into<String>) {
        self.domains.insert(attr.into(), domain.into());
    }

    /// The dictionary domain of attribute `attr`.
    pub fn domain_of<'a>(&'a self, attr: &'a str) -> &'a str {
        self.domains.get(attr).map(|s| s.as_str()).unwrap_or(attr)
    }

    /// The shared dictionary of `domain`, if any strings were interned into it.
    pub fn dictionary(&self, domain: &str) -> Option<&Dictionary> {
        self.dicts.get(domain).map(|d| d.as_ref())
    }

    /// The shared dictionary that attribute `attr` interns into, if any.
    pub fn dictionary_of_attr(&self, attr: &str) -> Option<&Dictionary> {
        self.dicts.get(self.domain_of(attr)).map(|d| d.as_ref())
    }

    /// Load external typed rows as relation `name`, interning every string value
    /// through the shared per-domain dictionaries (strings are interned once per
    /// database: values already seen by this attribute's domain reuse their code).
    /// Encoding is columnar — one dictionary stream per attribute. Returns the
    /// number of stored tuples (after sort + dedup).
    ///
    /// The load is all-or-nothing: every row is validated against the schema
    /// (arity and value kinds) **before** any string reaches a shared dictionary,
    /// so a rejected load leaves the catalog untouched.
    pub fn insert_typed_rows(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        rows: &[TypedRow],
    ) -> Result<usize, DatabaseError> {
        let (columns, col_domains) = self.encode_typed_columns(&schema, rows)?;
        let rel = Relation::try_from_columns(schema, columns)
            .expect("columns built from arity-checked rows");
        let stored = rel.len();
        let name = name.into();
        self.insert(name.clone(), rel);
        self.loaded_domains.insert(name, col_domains);
        Ok(stored)
    }

    /// Validate `rows` against `schema` and encode them columnarly through the
    /// shared per-domain dictionaries — the common front half of the typed
    /// loaders. Validation happens **before** any string reaches a shared
    /// dictionary, so a rejected load leaves the catalog untouched. Returns the
    /// encoded columns plus the per-column intern domains.
    fn encode_typed_columns(
        &mut self,
        schema: &Schema,
        rows: &[TypedRow],
    ) -> Result<EncodedColumns, DatabaseError> {
        for row in rows {
            if row.len() != schema.arity() {
                return Err(StorageError::ArityMismatch {
                    expected: schema.arity(),
                    found: row.len(),
                }
                .into());
            }
            for (pos, value) in row.iter().enumerate() {
                if value.kind() != schema.attr_type(pos) {
                    return Err(StorageError::TypeMismatch {
                        attr: schema.attrs()[pos].clone(),
                        expected: schema.attr_type(pos),
                        found: value.kind(),
                    }
                    .into());
                }
            }
        }
        let mut columns = Vec::with_capacity(schema.arity());
        let mut col_domains = Vec::with_capacity(schema.arity());
        for (pos, attr) in schema.attrs().iter().enumerate() {
            let ty = schema.attr_type(pos);
            let (dict, domain) = match ty {
                AttrType::Int => (None, None),
                AttrType::Str => {
                    let domain = self.domain_of(attr).to_string();
                    (
                        Some(Arc::make_mut(self.dicts.entry(domain.clone()).or_default())),
                        Some(domain),
                    )
                }
            };
            let col = encode_column(attr, ty, rows.iter().map(|r| &r[pos]), dict)
                .expect("value kinds were validated above");
            columns.push(col);
            col_domains.push(domain);
        }
        Ok((columns, col_domains))
    }

    /// Typed ingest through the **delta path**: validate and dictionary-encode
    /// `rows` exactly like [`Database::insert_typed_rows`], but *append* them to
    /// the delta log stored under `name` (converting a static relation on first
    /// use, creating an empty delta log if `name` is new) instead of replacing
    /// the relation — so a batch costs O(batch · (arity + runs · log n))
    /// amortized, not a full re-sort of everything loaded so far. The target's
    /// schema (and, for string columns, the intern-time domain record) must
    /// match the incoming batch. Returns the number of newly live tuples.
    pub fn insert_typed_rows_delta(
        &mut self,
        name: &str,
        schema: Schema,
        rows: &[TypedRow],
    ) -> Result<usize, DatabaseError> {
        // ── validation phase: a rejected batch leaves the catalog untouched ──
        // the batch's intern domains, derived without touching any dictionary
        let col_domains: Vec<Option<String>> = schema
            .attrs()
            .iter()
            .enumerate()
            .map(|(pos, attr)| {
                (schema.attr_type(pos) == AttrType::Str).then(|| self.domain_of(attr).to_string())
            })
            .collect();
        let stored_schema = self
            .deltas
            .get(name)
            .map(|d| d.schema())
            .or_else(|| self.relations.get(name).map(|r| r.schema()));
        if let Some(stored) = stored_schema {
            if stored.attrs() != schema.attrs() {
                return Err(StorageError::SchemaMismatch {
                    left: stored.attrs().to_vec(),
                    right: schema.attrs().to_vec(),
                }
                .into());
            }
            if stored != &schema {
                // same names, differing types: report the first offending column
                let pos = (0..schema.arity())
                    .find(|&p| stored.attr_type(p) != schema.attr_type(p))
                    .expect("schemas differ beyond their attribute names");
                return Err(StorageError::TypeMismatch {
                    attr: schema.attrs()[pos].clone(),
                    expected: stored.attr_type(pos),
                    found: schema.attr_type(pos),
                }
                .into());
            }
            // intern-time domain record must agree with the incoming batch (a
            // raw-inserted base has no record: the caller owns its encoding, so
            // bind-time domains apply, as for `insert`)
            if let Some(loaded) = self.loaded_domains.get(name) {
                for (pos, (was, now)) in loaded.iter().zip(&col_domains).enumerate() {
                    if was != now {
                        return Err(DatabaseError::DomainMismatch {
                            relation: name.to_string(),
                            attr: schema.attrs()[pos].clone(),
                            loaded: was.clone().unwrap_or_else(|| "<none>".into()),
                            current: now.clone().unwrap_or_else(|| "<none>".into()),
                        });
                    }
                }
            }
        }
        // row arity/kind validation happens inside encode_typed_columns before
        // any string reaches a shared dictionary
        let (columns, encoded_domains) = self.encode_typed_columns(&schema, rows)?;
        debug_assert_eq!(encoded_domains, col_domains);

        // ── mutation phase ──
        if !self.deltas.contains_key(name) {
            if self.relations.contains_key(name) {
                self.to_delta(name)?;
            } else {
                self.deltas
                    .insert(name.to_string(), DeltaRelation::new(schema.clone()));
                self.loaded_domains.insert(name.to_string(), col_domains);
            }
        }
        let delta = self.deltas.get_mut(name).expect("just ensured");
        let mut fresh = 0usize;
        for i in 0..rows.len() {
            let tuple: Tuple = columns.iter().map(|c| c[i]).collect();
            if delta.insert(tuple).expect("arity matches checked schema") {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Load delimiter-separated text (CSV with `delim = ','`, TSV with `'\t'`) as
    /// relation `name`. Each non-empty line is one tuple; cells are trimmed;
    /// [`AttrType::Int`] attributes parse as `u64`, [`AttrType::Str`] attributes
    /// intern through the shared per-domain dictionaries. If the **first non-empty
    /// line** matches the schema's attribute names exactly, it is skipped as a
    /// header (note the corollary: for an all-`Str` schema, a headerless file whose
    /// first tuple happens to spell the attribute names is indistinguishable from a
    /// header and is skipped). Returns the number of stored tuples.
    pub fn insert_csv(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        text: &str,
        delim: char,
    ) -> Result<usize, DatabaseError> {
        let rows = Self::parse_csv_rows(&schema, text, delim)?;
        self.insert_typed_rows(name, schema, &rows)
    }

    /// [`Database::insert_csv`] routed through the **delta path**
    /// ([`Database::insert_typed_rows_delta`]): the parsed batch appends to the
    /// delta log under `name` instead of replacing the relation.
    pub fn insert_csv_delta(
        &mut self,
        name: &str,
        schema: Schema,
        text: &str,
        delim: char,
    ) -> Result<usize, DatabaseError> {
        let rows = Self::parse_csv_rows(&schema, text, delim)?;
        self.insert_typed_rows_delta(name, schema, &rows)
    }

    /// Parse delimiter-separated text into typed rows (shared by the replace-
    /// and delta-path CSV loaders; see [`Database::insert_csv`] for the format).
    fn parse_csv_rows(
        schema: &Schema,
        text: &str,
        delim: char,
    ) -> Result<Vec<TypedRow>, DatabaseError> {
        let mut rows: Vec<TypedRow> = Vec::new();
        let mut first_nonempty = true;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(delim).map(str::trim).collect();
            let is_first = std::mem::replace(&mut first_nonempty, false);
            if is_first
                && cells
                    == schema
                        .attrs()
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
            {
                continue; // header row
            }
            if cells.len() != schema.arity() {
                return Err(DatabaseError::Parse {
                    line: lineno + 1,
                    message: format!("expected {} fields, got {}", schema.arity(), cells.len()),
                });
            }
            let row: TypedRow =
                cells
                    .iter()
                    .enumerate()
                    .map(|(pos, cell)| match schema.attr_type(pos) {
                        AttrType::Str => Ok(TypedValue::Str(cell.to_string())),
                        AttrType::Int => cell.parse::<u64>().map(TypedValue::Int).map_err(|e| {
                            DatabaseError::Parse {
                                line: lineno + 1,
                                message: format!(
                                    "attribute `{}`: `{cell}` is not a u64 ({e})",
                                    schema.attrs()[pos]
                                ),
                            }
                        }),
                    })
                    .collect::<Result<_, _>>()?;
            rows.push(row);
        }
        Ok(rows)
    }

    /// [`Database::insert_csv`] with a tab delimiter.
    pub fn insert_tsv(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        text: &str,
    ) -> Result<usize, DatabaseError> {
        self.insert_csv(name, schema, text, '\t')
    }

    /// Absorb a relation that was encoded against its **own** per-attribute
    /// dictionaries: each local dictionary is merged into the attribute's shared
    /// per-domain dictionary ([`Dictionary::merge`]) and the column is rewritten
    /// through the resulting code remap ([`Relation::remap_columns`]). `attr_dicts`
    /// holds one entry per attribute, `Some` exactly for the [`AttrType::Str`]
    /// attributes. This is how independently-loaded data (one dictionary per file,
    /// per shard, per ingest worker) is unified into the catalog's shared domains.
    ///
    /// All-or-nothing: the dictionary pairing and every column's code range are
    /// validated **before** any merge, so a rejected load leaves the shared
    /// dictionaries untouched.
    pub fn insert_interned(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        attr_dicts: &[Option<Dictionary>],
    ) -> Result<usize, DatabaseError> {
        if attr_dicts.len() != relation.arity() {
            return Err(StorageError::ArityMismatch {
                expected: relation.arity(),
                found: attr_dicts.len(),
            }
            .into());
        }
        // validation pass: no shared state is touched until everything checks out
        for (pos, attr) in relation.schema().attrs().iter().enumerate() {
            match (relation.schema().attr_type(pos), &attr_dicts[pos]) {
                (AttrType::Int, None) => {}
                (AttrType::Str, Some(local)) => {
                    // every code of the column must be assigned by its local dict
                    if let Some(&max) = relation.column(pos).iter().max() {
                        if max as usize >= local.len() {
                            return Err(StorageError::UnknownCode(max).into());
                        }
                    }
                }
                (AttrType::Str, None) => {
                    return Err(StorageError::MissingDictionary(attr.clone()).into())
                }
                (AttrType::Int, Some(_)) => {
                    return Err(StorageError::TypeMismatch {
                        attr: attr.clone(),
                        expected: AttrType::Int,
                        found: AttrType::Str,
                    }
                    .into())
                }
            }
        }
        // mutation pass: merge local dictionaries into the shared domains
        let mut maps: Vec<Option<Vec<u64>>> = Vec::with_capacity(relation.arity());
        let mut col_domains = Vec::with_capacity(relation.arity());
        for (pos, attr) in relation.schema().attrs().iter().enumerate() {
            match &attr_dicts[pos] {
                None => {
                    maps.push(None);
                    col_domains.push(None);
                }
                Some(local) => {
                    let domain = self.domain_of(attr).to_string();
                    let shared = Arc::make_mut(self.dicts.entry(domain.clone()).or_default());
                    maps.push(Some(shared.merge(local)));
                    col_domains.push(Some(domain));
                }
            }
        }
        let map_refs: Vec<Option<&[u64]>> = maps.iter().map(|m| m.as_deref()).collect();
        let remapped = relation
            .remap_columns(&map_refs)
            .expect("code ranges were validated above");
        let stored = remapped.len();
        let name = name.into();
        self.insert(name.clone(), remapped);
        self.loaded_domains.insert(name, col_domains);
        Ok(stored)
    }

    /// Derive (and validate) each query variable's typing from the stored relations
    /// bound to the query's atoms: every atom binding a variable must agree on the
    /// attribute type **and**, for string attributes, the dictionary domain —
    /// otherwise the join would compare codes from different value spaces. Returns
    /// one [`VarBinding`] per variable, in variable-id order.
    ///
    /// For relations loaded through the typed loaders, the domain compared is the
    /// one each column's codes were **interned into at load time** — not the
    /// current [`Database::set_domain`] mapping — so remapping a domain after
    /// loading cannot smuggle two unrelated dictionaries past this check.
    pub fn var_bindings(&self, query: &ConjunctiveQuery) -> Result<Vec<VarBinding>, DatabaseError> {
        let mut out: Vec<Option<VarBinding>> = vec![None; query.num_vars()];
        for (ai, atom) in query.atoms().iter().enumerate() {
            let stored = self
                .stored_schema(&atom.name)
                .ok_or_else(|| DatabaseError::MissingRelation(atom.name.clone()))?;
            if stored.arity() != atom.vars.len() {
                return Err(DatabaseError::ArityMismatch {
                    atom: atom.name.clone(),
                    expected: atom.vars.len(),
                    found: stored.arity(),
                });
            }
            let load_record = self.loaded_domains.get(&atom.name);
            for (pos, &v) in atom.vars.iter().enumerate() {
                let ty = stored.attr_type(pos);
                let attr = &stored.attrs()[pos];
                let binding = VarBinding {
                    ty,
                    domain: (ty == AttrType::Str).then(|| {
                        load_record
                            .and_then(|cols| cols[pos].clone())
                            .unwrap_or_else(|| self.domain_of(attr).to_string())
                    }),
                };
                match &out[v] {
                    None => out[v] = Some(binding),
                    Some(first) if *first != binding => {
                        return Err(DatabaseError::VarTypeMismatch {
                            var: query.var_name(v).to_string(),
                            first: first.describe(),
                            conflict: format!(
                                "{} (atom #{ai} `{}`)",
                                binding.describe(),
                                atom.name
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("every query variable appears in some atom"))
            .collect())
    }

    /// The **static** relation stored under `name`, if any (delta-backed
    /// relations are reached via [`Database::delta`] or materialized through
    /// [`Database::relation_for_atom`]).
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// The schema of the relation stored under `name` (static or delta-backed).
    fn stored_schema(&self, name: &str) -> Option<&Schema> {
        self.relations
            .get(name)
            .map(|r| r.schema())
            .or_else(|| self.deltas.get(name).map(|d| d.schema()))
    }

    /// Names of the stored relations, static and delta-backed (unsorted).
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations
            .keys()
            .chain(self.deltas.keys())
            .map(|s| s.as_str())
            .collect()
    }

    /// Number of stored relations (static plus delta-backed).
    pub fn num_relations(&self) -> usize {
        self.relations.len() + self.deltas.len()
    }

    /// Total number of (live) tuples across all stored relations (`|D|`).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum::<usize>()
            + self.deltas.values().map(|d| d.len()).sum::<usize>()
    }

    /// Size of the largest stored relation (the `N` of the AGM bound `N^{ρ*}`).
    pub fn max_relation_size(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.len())
            .chain(self.deltas.values().map(|d| d.len()))
            .max()
            .unwrap_or(0)
    }

    /// The relation for atom `i` of `query`, with its columns renamed (positionally)
    /// to the atom's variable names. Delta-backed relations are **materialized**
    /// ([`DeltaRelation::snapshot`]) — the path of the binary baseline and the
    /// test references; the WCOJ engines instead run live over
    /// [`Database::atom_source`] without rebuilding.
    pub fn relation_for_atom(
        &self,
        query: &ConjunctiveQuery,
        atom_index: usize,
    ) -> Result<Relation, DatabaseError> {
        let atom = query.atom(atom_index);
        let var_names = query.atom_var_names(atom_index);
        if let Some(stored) = self.relations.get(&atom.name) {
            if stored.arity() != atom.vars.len() {
                return Err(DatabaseError::ArityMismatch {
                    atom: atom.name.clone(),
                    expected: atom.vars.len(),
                    found: stored.arity(),
                });
            }
            return Ok(stored.rename(&var_names)?);
        }
        let delta = self
            .deltas
            .get(&atom.name)
            .ok_or_else(|| DatabaseError::MissingRelation(atom.name.clone()))?;
        if delta.arity() != atom.vars.len() {
            return Err(DatabaseError::ArityMismatch {
                atom: atom.name.clone(),
                expected: atom.vars.len(),
                found: delta.arity(),
            });
        }
        Ok(delta.snapshot().rename(&var_names)?)
    }

    /// The (live) tuple count of the relation bound to atom `i` — the
    /// cardinality the AGM planner needs, without materializing delta-backed
    /// relations. Validates the binding (relation exists, arity matches) like
    /// [`Database::relation_for_atom`], so standalone bound computations reject
    /// invalid bindings instead of producing a meaningless bound.
    pub fn atom_size(
        &self,
        query: &ConjunctiveQuery,
        atom_index: usize,
    ) -> Result<usize, DatabaseError> {
        let atom = query.atom(atom_index);
        let (arity, len) = if let Some(stored) = self.relations.get(&atom.name) {
            (stored.arity(), stored.len())
        } else if let Some(delta) = self.deltas.get(&atom.name) {
            (delta.arity(), delta.len())
        } else {
            return Err(DatabaseError::MissingRelation(atom.name.clone()));
        };
        if arity != atom.vars.len() {
            return Err(DatabaseError::ArityMismatch {
                atom: atom.name.clone(),
                expected: atom.vars.len(),
                found: arity,
            });
        }
        Ok(len)
    }

    /// The access-structure source for atom `i` of `query`: a borrowed handle
    /// to the stored static relation or to the live delta log — in both cases
    /// the stored columns map to the atom's variables positionally, with no
    /// per-query rename or copy. This is what lets the execution layer run
    /// live over delta logs and reuse cached access structures across queries.
    pub fn atom_source(
        &self,
        query: &ConjunctiveQuery,
        atom_index: usize,
    ) -> Result<AtomSource<'_>, DatabaseError> {
        let atom = query.atom(atom_index);
        if let Some(delta) = self.deltas.get(&atom.name) {
            if delta.arity() != atom.vars.len() {
                return Err(DatabaseError::ArityMismatch {
                    atom: atom.name.clone(),
                    expected: atom.vars.len(),
                    found: delta.arity(),
                });
            }
            return Ok(AtomSource::Delta(delta));
        }
        let stored = self
            .relations
            .get(&atom.name)
            .ok_or_else(|| DatabaseError::MissingRelation(atom.name.clone()))?;
        if stored.arity() != atom.vars.len() {
            return Err(DatabaseError::ArityMismatch {
                atom: atom.name.clone(),
                expected: atom.vars.len(),
                found: stored.arity(),
            });
        }
        Ok(AtomSource::Static(stored.as_ref()))
    }

    /// All atom sources of `query`, in atom order (see
    /// [`Database::atom_source`]).
    pub fn atom_sources(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<Vec<AtomSource<'_>>, DatabaseError> {
        (0..query.atoms().len())
            .map(|i| self.atom_source(query, i))
            .collect()
    }

    /// All atom relations of `query`, in atom order, renamed to atom variables.
    pub fn atom_relations(&self, query: &ConjunctiveQuery) -> Result<Vec<Relation>, DatabaseError> {
        (0..query.atoms().len())
            .map(|i| self.relation_for_atom(query, i))
            .collect()
    }

    /// Whether a single constraint is satisfied (`D ⊨ {c}`): some guard atom's
    /// relation has degree at most `c.bound`.
    pub fn satisfies_constraint(
        &self,
        query: &ConjunctiveQuery,
        c: &DegreeConstraint,
        constraint_index: usize,
    ) -> Result<bool, DatabaseError> {
        let guards = match c.guard {
            Some(g) => vec![g],
            None => c.candidate_guards(query),
        };
        if guards.is_empty() {
            return Err(DatabaseError::NoGuard {
                constraint: constraint_index,
            });
        }
        for g in guards {
            let rel = self.relation_for_atom(query, g)?;
            let x_names: Vec<&str> = c.x.iter().map(|&v| query.var_name(v)).collect();
            let y_names: Vec<&str> = c.y.iter().map(|&v| query.var_name(v)).collect();
            let deg = rel.max_degree(&x_names, &y_names)?;
            if deg <= c.bound {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether the database satisfies every constraint in `dc` (`D ⊨ DC`).
    pub fn satisfies(
        &self,
        query: &ConjunctiveQuery,
        dc: &ConstraintSet,
    ) -> Result<bool, DatabaseError> {
        for (i, c) in dc.iter().enumerate() {
            if !self.satisfies_constraint(query, c, i)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Derive the tightest cardinality constraints this database satisfies for
    /// `query`: one `|R_F| ≤ |R_F(D)|` constraint per atom. This is the standard way
    /// experiments construct the `DC` set in the AGM regime.
    pub fn cardinality_constraints(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<ConstraintSet, DatabaseError> {
        let mut dc = ConstraintSet::new();
        for i in 0..query.atoms().len() {
            let rel = self.relation_for_atom(query, i)?;
            dc.push(
                DegreeConstraint::cardinality(query.atom_var_set(i), rel.len() as u64)
                    .with_guard(i),
            );
        }
        Ok(dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples;
    use wcoj_storage::Schema;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", vec![(1, 2), (2, 3), (1, 3)]),
        );
        db.insert(
            "S",
            Relation::from_pairs("B", "C", vec![(2, 3), (3, 1), (3, 4)]),
        );
        db.insert(
            "T",
            Relation::from_pairs("A", "C", vec![(1, 3), (2, 1), (1, 4)]),
        );
        db
    }

    #[test]
    fn basic_accessors() {
        let db = triangle_db();
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.total_tuples(), 9);
        assert_eq!(db.max_relation_size(), 3);
        assert!(db.get("R").is_some());
        assert!(db.get("Z").is_none());
        let mut names = db.relation_names();
        names.sort_unstable();
        assert_eq!(names, vec!["R", "S", "T"]);
    }

    #[test]
    fn relation_for_atom_renames_positionally() {
        let q = examples::clique(3); // E(X0,X1), E(X0,X2), E(X1,X2)
        let mut db = Database::new();
        db.insert(
            "E",
            Relation::from_pairs("src", "dst", vec![(1, 2), (2, 3)]),
        );
        let r0 = db.relation_for_atom(&q, 0).unwrap();
        assert_eq!(r0.schema().attrs(), &["X0".to_string(), "X1".to_string()]);
        let r2 = db.relation_for_atom(&q, 2).unwrap();
        assert_eq!(r2.schema().attrs(), &["X1".to_string(), "X2".to_string()]);
        assert_eq!(db.atom_relations(&q).unwrap().len(), 3);
    }

    #[test]
    fn missing_relation_and_arity_mismatch() {
        let q = examples::triangle();
        let mut db = Database::new();
        db.insert("R", Relation::from_pairs("A", "B", vec![(1, 2)]));
        assert_eq!(
            db.relation_for_atom(&q, 1).unwrap_err(),
            DatabaseError::MissingRelation("S".to_string())
        );
        db.insert(
            "S",
            Relation::from_rows(Schema::new(&["B", "C", "D"]), vec![vec![1, 2, 3]]),
        );
        assert!(matches!(
            db.relation_for_atom(&q, 1).unwrap_err(),
            DatabaseError::ArityMismatch {
                expected: 2,
                found: 3,
                ..
            }
        ));
    }

    #[test]
    fn satisfies_cardinality_constraints() {
        let q = examples::triangle();
        let db = triangle_db();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 3), ("S", 3), ("T", 3)]).unwrap();
        assert!(db.satisfies(&q, &dc).unwrap());
        let too_tight =
            ConstraintSet::all_cardinalities(&q, &[("R", 2), ("S", 3), ("T", 3)]).unwrap();
        assert!(!db.satisfies(&q, &too_tight).unwrap());
    }

    #[test]
    fn satisfies_degree_constraints() {
        let q = examples::triangle();
        let db = triangle_db();
        // deg_R(B | A): A=1 has 2 neighbours, A=2 has 1 -> max 2
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &["A"], &["B"], 2).unwrap();
        assert!(db.satisfies(&q, &dc).unwrap());
        let mut dc_tight = ConstraintSet::new();
        dc_tight.push_named(&q, &["A"], &["B"], 1).unwrap();
        assert!(!db.satisfies(&q, &dc_tight).unwrap());
    }

    #[test]
    fn no_guard_is_an_error() {
        let q = examples::triangle();
        let db = triangle_db();
        // {A, B, C} is not contained in any atom
        let c = DegreeConstraint::cardinality(vec![0, 1, 2], 100);
        let dc = ConstraintSet::from_constraints(vec![c]);
        assert_eq!(
            db.satisfies(&q, &dc).unwrap_err(),
            DatabaseError::NoGuard { constraint: 0 }
        );
    }

    #[test]
    fn derived_cardinality_constraints_are_satisfied_and_tight() {
        let q = examples::triangle();
        let db = triangle_db();
        let dc = db.cardinality_constraints(&q).unwrap();
        assert_eq!(dc.len(), 3);
        assert!(db.satisfies(&q, &dc).unwrap());
        assert!(dc.iter().all(|c| c.bound == 3));
    }

    #[test]
    fn error_display() {
        let e = DatabaseError::MissingRelation("R".into());
        assert!(e.to_string().contains('R'));
        let e = DatabaseError::NoGuard { constraint: 2 };
        assert!(e.to_string().contains('2'));
        let e: DatabaseError = StorageError::NoJoinAttributes.into();
        assert!(e.to_string().contains("storage"));
        let e: DatabaseError = QueryError::EmptyQuery.into();
        assert!(e.to_string().contains("query"));
        let e = DatabaseError::ArityMismatch {
            atom: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        let e = DatabaseError::VarTypeMismatch {
            var: "B".into(),
            first: "Str[user]".into(),
            conflict: "Int (atom #1 `S`)".into(),
        };
        assert!(e.to_string().contains("Str[user]") && e.to_string().contains('B'));
        let e = DatabaseError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    fn str_pair_schema(a: &str, b: &str) -> Schema {
        Schema::with_types(&[a, b], &[AttrType::Str, AttrType::Str])
    }

    fn typed_pairs(pairs: &[(&str, &str)]) -> Vec<Vec<TypedValue>> {
        pairs
            .iter()
            .map(|&(a, b)| vec![TypedValue::from(a), TypedValue::from(b)])
            .collect()
    }

    #[test]
    fn typed_rows_share_domain_dictionaries_across_relations() {
        let mut db = Database::new();
        let r = typed_pairs(&[("ann", "bob"), ("bob", "cat")]);
        let s = typed_pairs(&[("bob", "dan"), ("cat", "ann")]);
        db.insert_typed_rows("R", str_pair_schema("A", "B"), &r)
            .unwrap();
        db.insert_typed_rows("S", str_pair_schema("B", "C"), &s)
            .unwrap();
        // A, B, C are separate domains by default, but B is shared across R and S:
        // "bob"/"cat" must have interned once into domain B
        let b = db.dictionary("B").unwrap();
        assert_eq!(b.len(), 2); // bob, cat — interned once, shared by R and S
        assert_eq!(
            b.code("bob"),
            db.dictionary_of_attr("B").unwrap().code("bob")
        );
        // codes in R's B-column and S's B-column agree, so the join is meaningful
        let r_b = db.get("R").unwrap().column_of("B").unwrap().to_vec();
        let s_b = db.get("S").unwrap().column_of("B").unwrap().to_vec();
        assert!(r_b.contains(&b.code("bob").unwrap()));
        assert!(s_b.contains(&b.code("bob").unwrap()));
        // arity-checked
        assert!(db
            .insert_typed_rows("T", str_pair_schema("A", "C"), &[vec!["x".into()]])
            .is_err());
    }

    #[test]
    fn domain_override_unifies_attribute_names() {
        let mut db = Database::new();
        db.set_domain("src", "user");
        db.set_domain("dst", "user");
        assert_eq!(db.domain_of("src"), "user");
        assert_eq!(db.domain_of("other"), "other");
        let e = typed_pairs(&[("ann", "bob"), ("bob", "ann")]);
        db.insert_typed_rows("E", str_pair_schema("src", "dst"), &e)
            .unwrap();
        let user = db.dictionary("user").unwrap();
        assert_eq!(user.len(), 2);
        assert!(db.dictionary("src").is_none());
        // both columns carry the same code space
        let rel = db.get("E").unwrap();
        let ann = user.code("ann").unwrap();
        assert!(rel.column_of("src").unwrap().contains(&ann));
        assert!(rel.column_of("dst").unwrap().contains(&ann));
    }

    #[test]
    fn csv_and_tsv_loads() {
        let mut db = Database::new();
        let schema = Schema::with_types(&["name", "age"], &[AttrType::Str, AttrType::Int]);
        let n = db
            .insert_csv(
                "P",
                schema.clone(),
                "name,age\nann, 31\nbob,44\n\nann,31\n",
                ',',
            )
            .unwrap();
        assert_eq!(n, 2); // header skipped, blank skipped, duplicate deduped
        assert_eq!(db.dictionary("name").unwrap().len(), 2);

        let mut db2 = Database::new();
        assert_eq!(
            db2.insert_tsv("P", schema.clone(), "ann\t31\nbob\t44")
                .unwrap(),
            2
        );
        // bad arity and bad integers are reported with line numbers
        assert!(matches!(
            db2.insert_csv("Q", schema.clone(), "ann,31\nbob", ',')
                .unwrap_err(),
            DatabaseError::Parse { line: 2, .. }
        ));
        assert!(matches!(
            db2.insert_csv("Q", schema, "ann,notanumber", ',')
                .unwrap_err(),
            DatabaseError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn insert_interned_merges_into_shared_domains() {
        // encode R and S against independent local dictionaries, then unify
        let mut local_b_r = Dictionary::new();
        let r_rows: Vec<Vec<u64>> = vec![
            vec![0, local_b_r.intern("bob")],
            vec![1, local_b_r.intern("ann")],
        ];
        let r = Relation::from_rows(
            Schema::with_types(&["A", "B"], &[AttrType::Int, AttrType::Str]),
            r_rows,
        );
        let mut local_b_s = Dictionary::new();
        let s_rows: Vec<Vec<u64>> = vec![
            vec![local_b_s.intern("ann"), 7],
            vec![local_b_s.intern("cat"), 8],
        ];
        let s = Relation::from_rows(
            Schema::with_types(&["B", "C"], &[AttrType::Str, AttrType::Int]),
            s_rows,
        );

        let mut db = Database::new();
        db.insert_interned("R", r, &[None, Some(local_b_r)])
            .unwrap();
        db.insert_interned("S", s, &[Some(local_b_s), None])
            .unwrap();
        let b = db.dictionary("B").unwrap();
        assert_eq!(b.len(), 3); // bob, ann, cat — interned once
                                // after the rewrite, "ann" has ONE code across both relations
        let ann = b.code("ann").unwrap();
        assert!(db.get("R").unwrap().column_of("B").unwrap().contains(&ann));
        assert!(db.get("S").unwrap().column_of("B").unwrap().contains(&ann));

        // contract violations
        let t = Relation::empty(Schema::with_types(&["X"], &[AttrType::Str]));
        assert!(db.insert_interned("T", t.clone(), &[]).is_err()); // wrong dict count
        assert!(db.insert_interned("T", t, &[None]).is_err()); // Str without dict
        let u = Relation::empty(Schema::new(&["Y"]));
        assert!(db
            .insert_interned("U", u, &[Some(Dictionary::new())])
            .is_err()); // Int with dict
    }

    #[test]
    fn var_bindings_validate_types_and_domains() {
        let q = examples::triangle(); // R(A,B), S(B,C), T(A,C)
        let mut db = Database::new();
        db.insert_typed_rows("R", str_pair_schema("A", "B"), &typed_pairs(&[("x", "y")]))
            .unwrap();
        db.insert_typed_rows("S", str_pair_schema("B", "C"), &typed_pairs(&[("y", "z")]))
            .unwrap();
        db.insert_typed_rows("T", str_pair_schema("A", "C"), &typed_pairs(&[("x", "z")]))
            .unwrap();
        let bindings = db.var_bindings(&q).unwrap();
        assert_eq!(bindings.len(), 3);
        assert!(bindings
            .iter()
            .all(|b| b.ty == AttrType::Str && b.domain.is_some()));
        assert_eq!(bindings[1].domain.as_deref(), Some("B"));

        // rebind S with an Int B-column: variable B now disagrees across atoms
        db.insert("S", Relation::from_pairs("B", "C", vec![(1, 2)]));
        assert!(matches!(
            db.var_bindings(&q).unwrap_err(),
            DatabaseError::VarTypeMismatch { .. }
        ));
    }

    #[test]
    fn late_domain_remap_cannot_fool_var_bindings() {
        // load E(src,dst) WITHOUT a domain override: src and dst intern into
        // separate dictionaries; remapping the domains afterwards must not make
        // the already-loaded codes look unified
        let q = examples::clique(3);
        let mut db = Database::new();
        db.insert_typed_rows(
            "E",
            str_pair_schema("src", "dst"),
            &typed_pairs(&[("a", "b"), ("b", "a")]),
        )
        .unwrap();
        db.set_domain("src", "user");
        db.set_domain("dst", "user");
        // the load-time record (src / dst) wins over the current mapping
        assert!(matches!(
            db.var_bindings(&q).unwrap_err(),
            DatabaseError::VarTypeMismatch { .. }
        ));
        // a RELOAD under the new mapping is unified (and re-validated)
        db.insert_typed_rows(
            "E",
            str_pair_schema("src", "dst"),
            &typed_pairs(&[("a", "b"), ("b", "a")]),
        )
        .unwrap();
        assert!(db.var_bindings(&q).is_ok());
        // a raw insert drops the load record: bind-time domains apply again
        db.insert("E", Relation::from_pairs("src", "dst", vec![(0, 1)]));
        assert!(db.var_bindings(&q).is_ok()); // Int columns, no domains involved
    }

    #[test]
    fn failed_loads_leave_shared_dictionaries_untouched() {
        let mut db = Database::new();
        let schema = Schema::with_types(&["name", "age"], &[AttrType::Str, AttrType::Int]);
        // second column's kind is wrong: nothing may reach the `name` dictionary
        let bad = vec![vec![TypedValue::from("ann"), TypedValue::from("oops")]];
        assert!(matches!(
            db.insert_typed_rows("P", schema.clone(), &bad).unwrap_err(),
            DatabaseError::Storage(StorageError::TypeMismatch { .. })
        ));
        assert!(db.dictionary("name").is_none());
        assert!(db.get("P").is_none());

        // insert_interned: a column carrying a code its local dict never assigned
        // is rejected before any merge touches the shared tables
        let mut local = Dictionary::new();
        local.intern("only"); // codes: {0}
        let rel = Relation::from_rows(
            Schema::with_types(&["A"], &[AttrType::Str]),
            vec![vec![0], vec![7]],
        );
        assert!(matches!(
            db.insert_interned("R", rel, &[Some(local)]).unwrap_err(),
            DatabaseError::Storage(StorageError::UnknownCode(7))
        ));
        assert!(db.dictionary("A").is_none());
    }

    #[test]
    fn delta_routing_converts_and_applies_ops() {
        let q = examples::triangle();
        let mut db = triangle_db();
        // unknown names fail cleanly
        assert!(matches!(
            db.insert_delta("Z", vec![1, 2]).unwrap_err(),
            DatabaseError::MissingRelation(_)
        ));
        // first delta op converts the static relation (rows become the base run)
        assert!(db.insert_delta("R", vec![9, 9]).unwrap());
        assert!(!db.insert_delta("R", vec![1, 2]).unwrap()); // base row is live
        assert!(db.delete("R", &[1, 2]).unwrap());
        assert!(db.get("R").is_none(), "R moved to the delta map");
        assert_eq!(db.delta("R").unwrap().len(), 3);
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.total_tuples(), 9);
        assert!(db.relation_names().contains(&"R"));
        // sizes and schemas flow without materializing
        assert_eq!(db.atom_size(&q, 0).unwrap(), 3);
        assert!(db.var_bindings(&q).is_ok());
        // the materialized view applies the ops
        let r = db.relation_for_atom(&q, 0).unwrap();
        assert_eq!(r.rows(), vec![vec![1, 3], vec![2, 3], vec![9, 9]]);
        assert_eq!(r.schema().attrs(), &["A".to_string(), "B".to_string()]);
        // atom sources expose the live handle
        assert!(matches!(
            db.atom_source(&q, 0).unwrap(),
            AtomSource::Delta(_)
        ));
        assert!(matches!(
            db.atom_source(&q, 1).unwrap(),
            AtomSource::Static(_)
        ));
        // seal + compact round-trip
        db.seal("R").unwrap();
        db.compact("R", 2).unwrap();
        assert_eq!(db.delta("R").unwrap().num_runs(), 1);
        // raw insert replaces the delta-backed relation
        db.insert("R", Relation::from_pairs("A", "B", vec![(7, 7)]));
        assert!(db.delta("R").is_none());
        assert_eq!(db.get("R").unwrap().len(), 1);
    }

    #[test]
    fn relation_stamps_track_rebinding() {
        let mut db = triangle_db();
        let s0 = db.relation_stamp("R");
        assert_ne!(s0, 0, "static relations are stamped at insert");
        assert_ne!(db.relation_stamp("S"), s0, "stamps are unique per binding");
        assert_eq!(db.relation_stamp("nope"), 0);
        // replacement under the same name takes a fresh stamp
        db.insert("R", Relation::from_pairs("A", "B", vec![(7, 7)]));
        let s1 = db.relation_stamp("R");
        assert_ne!(s1, s0);
        // clones keep the stamp (identical content), divergence re-stamps
        let mut clone = db.clone();
        assert_eq!(clone.relation_stamp("R"), s1);
        clone.insert("R", Relation::from_pairs("A", "B", vec![(8, 8)]));
        assert_ne!(clone.relation_stamp("R"), s1);
        assert_eq!(db.relation_stamp("R"), s1);
        // delta-backed relations carry no static stamp
        db.to_delta("R").unwrap();
        assert_eq!(db.relation_stamp("R"), 0);
        // the cache handle is shared across clones until rebudgeted
        assert!(std::ptr::eq(db.access_cache(), clone.access_cache()));
        clone.set_cache_budget(0);
        assert!(!std::ptr::eq(db.access_cache(), clone.access_cache()));
        assert!(!clone.access_cache().is_enabled());
    }

    #[test]
    fn typed_delta_ingest_appends_through_shared_dictionaries() {
        let mut db = Database::new();
        let schema = str_pair_schema("A", "B");
        let n = db
            .insert_typed_rows_delta("R", schema.clone(), &typed_pairs(&[("ann", "bob")]))
            .unwrap();
        assert_eq!(n, 1);
        // a second batch APPENDS (the replace path would drop the first batch)
        let n = db
            .insert_typed_rows_delta(
                "R",
                schema.clone(),
                &typed_pairs(&[("ann", "bob"), ("bob", "cat")]),
            )
            .unwrap();
        assert_eq!(n, 1, "duplicate row is not re-inserted");
        assert_eq!(db.delta("R").unwrap().len(), 2);
        assert_eq!(db.dictionary("A").unwrap().len(), 2); // ann, bob
        let q = examples::triangle();
        let bindings = db.var_bindings(&q);
        // R alone doesn't bind the triangle, but its schema is visible
        assert!(bindings.is_err()); // S, T missing
                                    // same attribute names with different types report the offending column
        assert!(matches!(
            db.insert_typed_rows_delta(
                "R",
                Schema::with_types(&["A", "B"], &[AttrType::Int, AttrType::Int]),
                &[vec![TypedValue::Int(1), TypedValue::Int(2)]],
            )
            .unwrap_err(),
            DatabaseError::Storage(StorageError::TypeMismatch { .. })
        ));
        // a late domain remap cannot mix code spaces in an append — and the
        // rejected batch must leave the catalog untouched (no "user" dictionary,
        // no new strings, no new tuples)
        db.set_domain("A", "user");
        let before_len = db.delta("R").unwrap().len();
        let err = db
            .insert_typed_rows_delta("R", schema, &typed_pairs(&[("dan", "eve")]))
            .unwrap_err();
        assert!(matches!(err, DatabaseError::DomainMismatch { .. }));
        assert!(err.to_string().contains("user"));
        assert!(db.dictionary("user").is_none(), "rejected batch interned");
        assert_eq!(db.dictionary("A").unwrap().len(), 2);
        assert_eq!(db.delta("R").unwrap().len(), before_len);
    }

    #[test]
    fn rejected_delta_batch_does_not_convert_static_relations() {
        let mut db = Database::new();
        db.insert_typed_rows("R", str_pair_schema("A", "B"), &typed_pairs(&[("x", "y")]))
            .unwrap();
        // wrong schema against a static target: error, and R stays static
        assert!(db
            .insert_typed_rows_delta(
                "R",
                Schema::with_types(&["A", "B"], &[AttrType::Int, AttrType::Int]),
                &[vec![TypedValue::Int(1), TypedValue::Int(2)]],
            )
            .is_err());
        assert!(db.get("R").is_some(), "rejected batch converted R to delta");
        assert!(db.delta("R").is_none());
        // maintenance calls never convert either (no-ops on static relations)
        db.seal("R").unwrap();
        db.compact("R", 1).unwrap();
        assert!(db.get("R").is_some());
        assert!(db.delta("R").is_none());
        assert!(matches!(
            db.seal("Z").unwrap_err(),
            DatabaseError::MissingRelation(_)
        ));
        assert!(matches!(
            db.compact("Z", 1).unwrap_err(),
            DatabaseError::MissingRelation(_)
        ));
    }

    #[test]
    fn csv_delta_ingest_appends() {
        let mut db = Database::new();
        let schema = Schema::with_types(&["name", "age"], &[AttrType::Str, AttrType::Int]);
        assert_eq!(
            db.insert_csv_delta("P", schema.clone(), "name,age\nann,31\n", ',')
                .unwrap(),
            1
        );
        assert_eq!(
            db.insert_csv_delta("P", schema, "bob,44\nann,31\n", ',')
                .unwrap(),
            1
        );
        assert_eq!(db.delta("P").unwrap().len(), 2);
        assert_eq!(db.dictionary("name").unwrap().len(), 2);
    }

    #[test]
    fn csv_header_skipped_after_leading_blank_lines() {
        let mut db = Database::new();
        let schema = Schema::with_types(&["name", "age"], &[AttrType::Str, AttrType::Int]);
        let n = db
            .insert_csv("P", schema, "\n\nname,age\nann,31\n", ',')
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.dictionary("name").unwrap().len(), 1);
    }

    #[test]
    fn var_bindings_catch_domain_splits_on_self_joins() {
        // clique(3) over E(src,dst): without a domain override, src and dst are
        // different dictionaries and the self-join is rejected
        let q = examples::clique(3);
        let mut db = Database::new();
        db.insert_typed_rows(
            "E",
            str_pair_schema("src", "dst"),
            &typed_pairs(&[("a", "b")]),
        )
        .unwrap();
        assert!(matches!(
            db.var_bindings(&q).unwrap_err(),
            DatabaseError::VarTypeMismatch { .. }
        ));

        // with src/dst mapped onto one domain, the same data binds cleanly
        let mut db2 = Database::new();
        db2.set_domain("src", "node");
        db2.set_domain("dst", "node");
        db2.insert_typed_rows(
            "E",
            str_pair_schema("src", "dst"),
            &typed_pairs(&[("a", "b")]),
        )
        .unwrap();
        let bindings = db2.var_bindings(&q).unwrap();
        assert!(bindings.iter().all(|b| b.domain.as_deref() == Some("node")));
        // pre-encoded u64 databases bind as Int with no domain
        let db3 = triangle_db();
        let bindings = db3.var_bindings(&examples::triangle()).unwrap();
        assert!(bindings
            .iter()
            .all(|b| b.ty == AttrType::Int && b.domain.is_none()));
    }
}
