//! Databases: named relations bound to the atoms of a query, plus verification that a
//! database satisfies a set of degree constraints (`D ⊨ DC`).

use crate::constraints::{ConstraintSet, DegreeConstraint};
use crate::query::{ConjunctiveQuery, QueryError};
use std::collections::HashMap;
use std::fmt;
use wcoj_storage::{Relation, StorageError};

/// Errors raised when binding a database to a query or verifying constraints.
#[derive(Debug, Clone, PartialEq)]
pub enum DatabaseError {
    /// No relation is stored under the given atom name.
    MissingRelation(String),
    /// The stored relation's arity does not match the atom's arity.
    ArityMismatch {
        /// The atom (relation) name.
        atom: String,
        /// Arity expected by the query atom.
        expected: usize,
        /// Arity of the stored relation.
        found: usize,
    },
    /// A degree constraint has no candidate guard atom in the query.
    NoGuard {
        /// Index of the constraint within its [`ConstraintSet`].
        constraint: usize,
    },
    /// A storage-level error.
    Storage(StorageError),
    /// A query-level error.
    Query(QueryError),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::MissingRelation(r) => write!(f, "missing relation `{r}`"),
            DatabaseError::ArityMismatch {
                atom,
                expected,
                found,
            } => write!(
                f,
                "relation `{atom}` has arity {found}, the query atom expects {expected}"
            ),
            DatabaseError::NoGuard { constraint } => {
                write!(f, "degree constraint #{constraint} has no guard atom")
            }
            DatabaseError::Storage(e) => write!(f, "storage error: {e}"),
            DatabaseError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

impl From<StorageError> for DatabaseError {
    fn from(e: StorageError) -> Self {
        DatabaseError::Storage(e)
    }
}

impl From<QueryError> for DatabaseError {
    fn from(e: QueryError) -> Self {
        DatabaseError::Query(e)
    }
}

/// A database instance: a map from relation names to [`Relation`]s.
///
/// Relations are matched to query atoms *by name and positionally*: the atom
/// `R(A, C)` binds the first column of the stored relation `R` to variable `A` and the
/// second to `C`, regardless of the stored attribute names. This is what allows
/// self-joins such as the clique query `E(X0,X1), E(X0,X2), E(X1,X2)` over a single
/// stored edge relation.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the relation stored under `name`.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// The relation stored under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Names of the stored relations (unsorted).
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Number of stored relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all stored relations (`|D|`).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Size of the largest stored relation (the `N` of the AGM bound `N^{ρ*}`).
    pub fn max_relation_size(&self) -> usize {
        self.relations.values().map(|r| r.len()).max().unwrap_or(0)
    }

    /// The relation for atom `i` of `query`, with its columns renamed (positionally)
    /// to the atom's variable names.
    pub fn relation_for_atom(
        &self,
        query: &ConjunctiveQuery,
        atom_index: usize,
    ) -> Result<Relation, DatabaseError> {
        let atom = query.atom(atom_index);
        let stored = self
            .relations
            .get(&atom.name)
            .ok_or_else(|| DatabaseError::MissingRelation(atom.name.clone()))?;
        if stored.arity() != atom.vars.len() {
            return Err(DatabaseError::ArityMismatch {
                atom: atom.name.clone(),
                expected: atom.vars.len(),
                found: stored.arity(),
            });
        }
        let var_names = query.atom_var_names(atom_index);
        Ok(stored.rename(&var_names)?)
    }

    /// All atom relations of `query`, in atom order, renamed to atom variables.
    pub fn atom_relations(&self, query: &ConjunctiveQuery) -> Result<Vec<Relation>, DatabaseError> {
        (0..query.atoms().len())
            .map(|i| self.relation_for_atom(query, i))
            .collect()
    }

    /// Whether a single constraint is satisfied (`D ⊨ {c}`): some guard atom's
    /// relation has degree at most `c.bound`.
    pub fn satisfies_constraint(
        &self,
        query: &ConjunctiveQuery,
        c: &DegreeConstraint,
        constraint_index: usize,
    ) -> Result<bool, DatabaseError> {
        let guards = match c.guard {
            Some(g) => vec![g],
            None => c.candidate_guards(query),
        };
        if guards.is_empty() {
            return Err(DatabaseError::NoGuard {
                constraint: constraint_index,
            });
        }
        for g in guards {
            let rel = self.relation_for_atom(query, g)?;
            let x_names: Vec<&str> = c.x.iter().map(|&v| query.var_name(v)).collect();
            let y_names: Vec<&str> = c.y.iter().map(|&v| query.var_name(v)).collect();
            let deg = rel.max_degree(&x_names, &y_names)?;
            if deg <= c.bound {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether the database satisfies every constraint in `dc` (`D ⊨ DC`).
    pub fn satisfies(
        &self,
        query: &ConjunctiveQuery,
        dc: &ConstraintSet,
    ) -> Result<bool, DatabaseError> {
        for (i, c) in dc.iter().enumerate() {
            if !self.satisfies_constraint(query, c, i)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Derive the tightest cardinality constraints this database satisfies for
    /// `query`: one `|R_F| ≤ |R_F(D)|` constraint per atom. This is the standard way
    /// experiments construct the `DC` set in the AGM regime.
    pub fn cardinality_constraints(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<ConstraintSet, DatabaseError> {
        let mut dc = ConstraintSet::new();
        for i in 0..query.atoms().len() {
            let rel = self.relation_for_atom(query, i)?;
            dc.push(
                DegreeConstraint::cardinality(query.atom_var_set(i), rel.len() as u64)
                    .with_guard(i),
            );
        }
        Ok(dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples;
    use wcoj_storage::Schema;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", vec![(1, 2), (2, 3), (1, 3)]),
        );
        db.insert(
            "S",
            Relation::from_pairs("B", "C", vec![(2, 3), (3, 1), (3, 4)]),
        );
        db.insert(
            "T",
            Relation::from_pairs("A", "C", vec![(1, 3), (2, 1), (1, 4)]),
        );
        db
    }

    #[test]
    fn basic_accessors() {
        let db = triangle_db();
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.total_tuples(), 9);
        assert_eq!(db.max_relation_size(), 3);
        assert!(db.get("R").is_some());
        assert!(db.get("Z").is_none());
        let mut names = db.relation_names();
        names.sort_unstable();
        assert_eq!(names, vec!["R", "S", "T"]);
    }

    #[test]
    fn relation_for_atom_renames_positionally() {
        let q = examples::clique(3); // E(X0,X1), E(X0,X2), E(X1,X2)
        let mut db = Database::new();
        db.insert(
            "E",
            Relation::from_pairs("src", "dst", vec![(1, 2), (2, 3)]),
        );
        let r0 = db.relation_for_atom(&q, 0).unwrap();
        assert_eq!(r0.schema().attrs(), &["X0".to_string(), "X1".to_string()]);
        let r2 = db.relation_for_atom(&q, 2).unwrap();
        assert_eq!(r2.schema().attrs(), &["X1".to_string(), "X2".to_string()]);
        assert_eq!(db.atom_relations(&q).unwrap().len(), 3);
    }

    #[test]
    fn missing_relation_and_arity_mismatch() {
        let q = examples::triangle();
        let mut db = Database::new();
        db.insert("R", Relation::from_pairs("A", "B", vec![(1, 2)]));
        assert_eq!(
            db.relation_for_atom(&q, 1).unwrap_err(),
            DatabaseError::MissingRelation("S".to_string())
        );
        db.insert(
            "S",
            Relation::from_rows(Schema::new(&["B", "C", "D"]), vec![vec![1, 2, 3]]),
        );
        assert!(matches!(
            db.relation_for_atom(&q, 1).unwrap_err(),
            DatabaseError::ArityMismatch {
                expected: 2,
                found: 3,
                ..
            }
        ));
    }

    #[test]
    fn satisfies_cardinality_constraints() {
        let q = examples::triangle();
        let db = triangle_db();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 3), ("S", 3), ("T", 3)]).unwrap();
        assert!(db.satisfies(&q, &dc).unwrap());
        let too_tight =
            ConstraintSet::all_cardinalities(&q, &[("R", 2), ("S", 3), ("T", 3)]).unwrap();
        assert!(!db.satisfies(&q, &too_tight).unwrap());
    }

    #[test]
    fn satisfies_degree_constraints() {
        let q = examples::triangle();
        let db = triangle_db();
        // deg_R(B | A): A=1 has 2 neighbours, A=2 has 1 -> max 2
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &["A"], &["B"], 2).unwrap();
        assert!(db.satisfies(&q, &dc).unwrap());
        let mut dc_tight = ConstraintSet::new();
        dc_tight.push_named(&q, &["A"], &["B"], 1).unwrap();
        assert!(!db.satisfies(&q, &dc_tight).unwrap());
    }

    #[test]
    fn no_guard_is_an_error() {
        let q = examples::triangle();
        let db = triangle_db();
        // {A, B, C} is not contained in any atom
        let c = DegreeConstraint::cardinality(vec![0, 1, 2], 100);
        let dc = ConstraintSet::from_constraints(vec![c]);
        assert_eq!(
            db.satisfies(&q, &dc).unwrap_err(),
            DatabaseError::NoGuard { constraint: 0 }
        );
    }

    #[test]
    fn derived_cardinality_constraints_are_satisfied_and_tight() {
        let q = examples::triangle();
        let db = triangle_db();
        let dc = db.cardinality_constraints(&q).unwrap();
        assert_eq!(dc.len(), 3);
        assert!(db.satisfies(&q, &dc).unwrap());
        assert!(dc.iter().all(|c| c.bound == 3));
    }

    #[test]
    fn error_display() {
        let e = DatabaseError::MissingRelation("R".into());
        assert!(e.to_string().contains('R'));
        let e = DatabaseError::NoGuard { constraint: 2 };
        assert!(e.to_string().contains('2'));
        let e: DatabaseError = StorageError::NoJoinAttributes.into();
        assert!(e.to_string().contains("storage"));
        let e: DatabaseError = QueryError::EmptyQuery.into();
        assert!(e.to_string().contains("query"));
        let e = DatabaseError::ArityMismatch {
            atom: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
    }
}
