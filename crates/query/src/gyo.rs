//! GYO (Graham / Yu–Özsoyoğlu) reduction and α-acyclicity of query hypergraphs.
//!
//! α-acyclicity of the *query* hypergraph is orthogonal to acyclicity of the
//! *constraint* set (Definition 3 of the paper explicitly warns about this): the
//! triangle query is cyclic as a hypergraph yet its cardinality-only constraint set is
//! acyclic. We still provide GYO reduction because (a) acyclic queries are the classic
//! case where join-project (Yannakakis-style) plans are optimal, which experiment E8
//! contrasts with WCOJ behaviour on cyclic queries, and (b) it is used to pick
//! baseline plans in `wcoj-core`.

use crate::hypergraph::Hypergraph;
use crate::VarId;

/// The result of running GYO reduction on a hypergraph.
#[derive(Debug, Clone)]
pub struct GyoReduction {
    /// Whether the hypergraph is α-acyclic (the reduction removed every edge).
    pub acyclic: bool,
    /// Indices of the removed edges, in removal order ("ears").
    pub ear_order: Vec<usize>,
    /// The edges that could not be removed (empty iff `acyclic`).
    pub residual_edges: Vec<Vec<VarId>>,
}

/// Run GYO reduction.
///
/// The classical two rules are applied until a fixpoint:
/// 1. delete a vertex that occurs in exactly one edge;
/// 2. delete an edge that is a subset of another (remaining) edge.
///
/// The hypergraph is α-acyclic iff every edge is eventually deleted.
pub fn gyo_reduce(h: &Hypergraph) -> GyoReduction {
    // Work on mutable copies of the edges; `alive[i]` tracks whether edge i remains.
    let mut edges: Vec<Vec<VarId>> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; edges.len()];
    let mut ear_order = Vec::new();

    loop {
        let mut changed = false;

        // Rule 1: remove vertices that occur in exactly one live edge.
        let mut occurrence: std::collections::HashMap<VarId, usize> =
            std::collections::HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            if alive[i] {
                for &v in e {
                    *occurrence.entry(v).or_insert(0) += 1;
                }
            }
        }
        for (i, e) in edges.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            let before = e.len();
            e.retain(|v| occurrence.get(v).copied().unwrap_or(0) > 1);
            if e.len() != before {
                changed = true;
            }
        }

        // Rule 2: remove edges that are subsets of another live edge (or empty).
        for i in 0..edges.len() {
            if !alive[i] {
                continue;
            }
            let is_empty = edges[i].is_empty();
            let subset_of_other = (0..edges.len())
                .any(|j| j != i && alive[j] && edges[i].iter().all(|v| edges[j].contains(v)));
            if is_empty || subset_of_other {
                alive[i] = false;
                ear_order.push(i);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let residual_edges: Vec<Vec<VarId>> = edges
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(e, _)| e.clone())
        .collect();
    GyoReduction {
        acyclic: residual_edges.is_empty(),
        ear_order,
        residual_edges,
    }
}

/// Whether the hypergraph is α-acyclic.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    gyo_reduce(h).acyclic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_query_is_acyclic() {
        // R(A,B), S(B,C), T(C,D)
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let red = gyo_reduce(&h);
        assert!(red.acyclic);
        assert_eq!(red.ear_order.len(), 3);
        assert!(red.residual_edges.is_empty());
        assert!(is_alpha_acyclic(&h));
    }

    #[test]
    fn triangle_is_cyclic() {
        let h = Hypergraph::cycle(3);
        let red = gyo_reduce(&h);
        assert!(!red.acyclic);
        assert_eq!(red.residual_edges.len(), 3);
        assert!(!is_alpha_acyclic(&h));
    }

    #[test]
    fn four_cycle_is_cyclic_but_chorded_four_cycle_is_acyclic() {
        assert!(!is_alpha_acyclic(&Hypergraph::cycle(4)));
        // adding the "big" edge {0,1,2,3} makes it acyclic (it absorbs everything)
        let mut edges: Vec<Vec<VarId>> = Hypergraph::cycle(4).edges().to_vec();
        edges.push(vec![0, 1, 2, 3]);
        assert!(is_alpha_acyclic(&Hypergraph::new(4, edges)));
    }

    #[test]
    fn star_and_single_edge_are_acyclic() {
        assert!(is_alpha_acyclic(&Hypergraph::star(4)));
        assert!(is_alpha_acyclic(&Hypergraph::new(2, vec![vec![0, 1]])));
    }

    #[test]
    fn loomis_whitney_is_cyclic_for_k_at_least_3() {
        assert!(!is_alpha_acyclic(&Hypergraph::loomis_whitney(3)));
        assert!(!is_alpha_acyclic(&Hypergraph::loomis_whitney(4)));
        // LW(2) is just two unary edges {0}, {1}... actually edges {1} and {0}; acyclic
        assert!(is_alpha_acyclic(&Hypergraph::loomis_whitney(2)));
    }

    #[test]
    fn duplicate_edges_do_not_confuse_reduction() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]]);
        assert!(is_alpha_acyclic(&h));
    }
}
