//! Variable-order planning for worst-case optimal join execution.
//!
//! Generic Join and Leapfrog Triejoin both fix a *global variable order*
//! `A_{σ(1)}, …, A_{σ(n)}` up front and bind variables in that order; every atom's
//! access path (trie or prefix index) is then built over the atom's attributes sorted
//! by their global position. The AGM guarantee of Algorithm 2 holds for **any**
//! order, but constants vary wildly in practice, so the choice matters.
//!
//! This module provides the order machinery itself — validation, per-atom attribute
//! orders, and a *weighted greedy* heuristic parameterized by per-atom weights. The
//! weights are deliberately an input: `wcoj-core::planner` feeds the optimal
//! fractional edge cover `δ_F` from the AGM LP of `wcoj-bounds` (which depends on
//! this crate, so the LP call cannot live here), closing the loop between the bounds
//! layer and the execution layer.
//!
//! The greedy rule: repeatedly pick the unordered variable with the largest total
//! weight of atoms covering it, preferring variables already *connected* to the
//! ordered prefix (sharing an atom with a chosen variable). Connectivity avoids
//! Cartesian-product plateaus; the cover weight prioritizes variables whose bindings
//! the AGM certificate charges the most, which are the most selective to fix early.

use crate::query::{ConjunctiveQuery, QueryError};
use crate::VarId;

/// Whether `order` is a permutation of the query's variables.
pub fn is_valid_order(query: &ConjunctiveQuery, order: &[VarId]) -> bool {
    let n = query.num_vars();
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

/// The default variable order: order of first appearance across atoms (the identity
/// permutation of [`VarId`]s).
pub fn default_order(query: &ConjunctiveQuery) -> Vec<VarId> {
    (0..query.num_vars()).collect()
}

/// The attribute order for atom `atom_index` induced by a global variable order: the
/// atom's variable names sorted by their position in `order`. This is the order its
/// trie / prefix index must be built over.
pub fn atom_attr_order<'q>(
    query: &'q ConjunctiveQuery,
    atom_index: usize,
    order: &[VarId],
) -> Result<Vec<&'q str>, QueryError> {
    if !is_valid_order(query, order) {
        return Err(QueryError::UnknownVariable(format!(
            "invalid variable order {order:?}"
        )));
    }
    let mut position = vec![0usize; query.num_vars()];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    let mut vars = query.atom(atom_index).vars.clone();
    vars.sort_by_key(|&v| position[v]);
    Ok(vars.into_iter().map(|v| query.var_name(v)).collect())
}

/// The levels (positions in the global order) at which atom `atom_index`
/// participates, ascending. Engines use this to know which cursors to intersect when
/// binding each variable.
pub fn atom_levels(query: &ConjunctiveQuery, atom_index: usize, order: &[VarId]) -> Vec<usize> {
    let mut levels: Vec<usize> = query
        .atom(atom_index)
        .vars
        .iter()
        .map(|&v| order.iter().position(|&o| o == v).expect("valid order"))
        .collect();
    levels.sort_unstable();
    levels
}

/// Weighted greedy variable order.
///
/// `atom_weights[f]` is the weight of atom `f` — in the AGM-guided planner these are
/// the optimal fractional edge cover exponents `δ_F` scaled by `log2 N_F`, i.e. the
/// bits of output the certificate charges to that atom. A variable's score is the
/// summed weight of atoms containing it. Ties (and the all-equal case) fall back to
/// appearance order, which keeps the choice deterministic.
pub fn weighted_greedy_order(query: &ConjunctiveQuery, atom_weights: &[f64]) -> Vec<VarId> {
    assert_eq!(
        atom_weights.len(),
        query.atoms().len(),
        "one weight per atom"
    );
    let n = query.num_vars();
    let score = |v: VarId| -> f64 {
        query
            .atoms_containing(v)
            .into_iter()
            .map(|f| atom_weights[f])
            .sum()
    };
    let mut order: Vec<VarId> = Vec::with_capacity(n);
    let mut chosen = vec![false; n];
    while order.len() < n {
        // candidate set: variables connected to the prefix, or all if none are
        let connected: Vec<VarId> = (0..n)
            .filter(|&v| !chosen[v])
            .filter(|&v| {
                order.is_empty()
                    || query
                        .atoms_containing(v)
                        .iter()
                        .any(|&f| query.atom(f).vars.iter().any(|&u| chosen[u]))
            })
            .collect();
        let pool: Vec<VarId> = if connected.is_empty() {
            (0..n).filter(|&v| !chosen[v]).collect()
        } else {
            connected
        };
        // max score; tie-break on smaller VarId (appearance order)
        let best = pool
            .into_iter()
            .max_by(|&a, &b| {
                score(a).partial_cmp(&score(b)).unwrap().then(b.cmp(&a)) // reversed: prefer smaller id on ties
            })
            .expect("pool is non-empty");
        chosen[best] = true;
        order.push(best);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::examples;

    #[test]
    fn valid_and_invalid_orders() {
        let q = examples::triangle();
        assert!(is_valid_order(&q, &[0, 1, 2]));
        assert!(is_valid_order(&q, &[2, 0, 1]));
        assert!(!is_valid_order(&q, &[0, 1]));
        assert!(!is_valid_order(&q, &[0, 1, 1]));
        assert!(!is_valid_order(&q, &[0, 1, 3]));
        assert_eq!(default_order(&q), vec![0, 1, 2]);
    }

    #[test]
    fn atom_attr_orders_follow_global_order() {
        let q = examples::triangle();
        // global order C, A, B -> R(A,B) becomes [A, B]; S(B,C) becomes [C, B];
        // T(A,C) becomes [C, A]
        let order = vec![2, 0, 1];
        assert_eq!(atom_attr_order(&q, 0, &order).unwrap(), vec!["A", "B"]);
        assert_eq!(atom_attr_order(&q, 1, &order).unwrap(), vec!["C", "B"]);
        assert_eq!(atom_attr_order(&q, 2, &order).unwrap(), vec!["C", "A"]);
        assert!(atom_attr_order(&q, 0, &[0, 1]).is_err());
    }

    #[test]
    fn atom_levels_are_global_positions() {
        let q = examples::triangle();
        let order = vec![2, 0, 1]; // C at level 0, A at 1, B at 2
        assert_eq!(atom_levels(&q, 0, &order), vec![1, 2]); // R(A,B)
        assert_eq!(atom_levels(&q, 1, &order), vec![0, 2]); // S(B,C)
        assert_eq!(atom_levels(&q, 2, &order), vec![0, 1]); // T(A,C)
    }

    #[test]
    fn greedy_order_is_deterministic_and_valid() {
        let q = examples::triangle();
        let order = weighted_greedy_order(&q, &[0.5, 0.5, 0.5]);
        assert!(is_valid_order(&q, &order));
        // equal weights: appearance order
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_order_prefers_heavily_covered_vars() {
        // star query Q(A,B1,B2,B3): A is in every atom, so with any positive weights
        // A must come first.
        let q = examples::star(3);
        let order = weighted_greedy_order(&q, &[1.0, 2.0, 3.0]);
        assert_eq!(order[0], 0, "hub variable A ordered first");
        assert!(is_valid_order(&q, &order));
    }

    #[test]
    fn greedy_order_stays_connected() {
        // 4-cycle R(A,B), S(B,C), T(C,D), W(D,A) with weight concentrated on T(C,D):
        // C or D first, then the rest must each share an atom with the prefix.
        let q = examples::four_cycle();
        let order = weighted_greedy_order(&q, &[0.1, 0.1, 10.0, 0.1]);
        assert!(is_valid_order(&q, &order));
        assert!(order[0] == 2 || order[0] == 3, "starts from the heavy atom");
        // every later variable shares an atom with an earlier one (cycle: always true
        // except for a disconnected pick — guard against regressions)
        for i in 1..order.len() {
            let prefix = &order[..i];
            let v = order[i];
            let connected = q
                .atoms_containing(v)
                .iter()
                .any(|&f| q.atom(f).vars.iter().any(|u| prefix.contains(u)));
            assert!(
                connected,
                "variable {v} disconnected from prefix {prefix:?}"
            );
        }
    }
}
