//! The modular LP (54) for acyclic degree constraints and its dual (57) — the
//! generalized AGM bound of Proposition 4.4.
//!
//! When the constraint dependency graph `G_DC` is acyclic, the polymatroid bound
//! collapses onto the much smaller LP over *modular* functions:
//!
//! ```text
//! maximize   Σ_i v_i
//! subject to Σ_{i ∈ Y−X} v_i ≤ log2 N_{Y|X}   for every (X, Y, N) ∈ DC
//!            v ≥ 0
//! ```
//!
//! whose optimum equals `max_{h ∈ Γ_n ∩ H_DC} h([n])` (Proposition 4.4) and whose
//! dual variables `δ_{Y|X}` are the exponents of the generalized AGM bound
//! `|Q| ≤ ∏ N_{Y|X}^{δ_{Y|X}}` (equation (57)) — these exponents are exactly what
//! Algorithm 3's runtime analysis (Theorem 5.1) needs.

use crate::BoundError;
use wcoj_lp::{Cmp, LinearProgram, LpError, Sense};
use wcoj_query::repair::{bound_variables, repair_to_acyclic};
use wcoj_query::ConstraintSet;

/// The result of solving the modular LP.
#[derive(Debug, Clone)]
pub struct ModularBound {
    /// `log2` of the bound on `|Q|`.
    pub log2_bound: f64,
    /// Optimal per-variable values `v_i = h({i})` of the modular witness.
    pub vertex_values: Vec<f64>,
    /// Dual exponents `δ_{Y|X}`, one per constraint in `DC` order (the generalized AGM
    /// exponents of equation (57)).
    pub exponents: Vec<f64>,
}

impl ModularBound {
    /// The bound as a tuple count `2^{log2_bound}`.
    pub fn tuple_bound(&self) -> f64 {
        self.log2_bound.exp2()
    }
}

/// Solve the modular LP for an *acyclic* constraint set over `n` variables.
///
/// Returns [`BoundError::CyclicConstraints`] if `dc` is cyclic (use
/// [`best_acyclic_repair`] first), and [`BoundError::Infinite`] if some variable is
/// not bounded by any constraint.
pub fn modular_bound(n: usize, dc: &ConstraintSet) -> Result<ModularBound, BoundError> {
    if !dc.is_acyclic(n) {
        return Err(BoundError::CyclicConstraints);
    }
    modular_bound_unchecked(n, dc)
}

/// Solve the modular LP without checking acyclicity. For cyclic `DC` the result is
/// still an upper bound on `max_{h ∈ M_n ∩ H_DC} h([n])` but Proposition 4.4's
/// equality with the polymatroid bound no longer applies; prefer [`modular_bound`].
pub fn modular_bound_unchecked(n: usize, dc: &ConstraintSet) -> Result<ModularBound, BoundError> {
    if dc.iter().any(|c| c.bound == 0) {
        return Ok(ModularBound {
            log2_bound: f64::NEG_INFINITY,
            vertex_values: vec![0.0; n],
            exponents: vec![0.0; dc.len()],
        });
    }
    let mut lp = LinearProgram::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| lp.add_var(format!("v{i}"), 1.0)).collect();
    for c in dc.iter() {
        let terms: Vec<_> = c.y_minus_x().into_iter().map(|i| (vars[i], 1.0)).collect();
        lp.add_constraint(&terms, Cmp::Le, c.log_bound());
    }
    let sol = match lp.solve() {
        Ok(s) => s,
        Err(LpError::Unbounded) | Err(LpError::EmptyProblem) => {
            return Err(BoundError::Infinite {
                reason: "some variable is not bounded by any degree constraint".to_string(),
            })
        }
        Err(e) => return Err(e.into()),
    };
    Ok(ModularBound {
        log2_bound: sol.objective,
        vertex_values: sol.primal,
        exponents: sol.dual,
    })
}

/// Search for the acyclic repair `DC'` of a (possibly cyclic) constraint set with the
/// *smallest* modular bound, following the discussion after Proposition 5.2.
///
/// The search explores all ways of weakening constraints along cycles (the same move
/// set as [`repair_to_acyclic`]) with memoization, and returns the acyclic candidate
/// with the minimum bound together with that bound. The state space is exponential in
/// the worst case; `max_states` caps the exploration (the greedy repair is used as a
/// fallback when the cap is hit).
pub fn best_acyclic_repair(
    dc: &ConstraintSet,
    n: usize,
    max_states: usize,
) -> Result<(ConstraintSet, ModularBound), BoundError> {
    use std::collections::HashSet;
    use wcoj_query::DegreeConstraint;

    // quick exit
    if dc.is_acyclic(n) {
        let b = modular_bound(n, dc)?;
        return Ok((dc.clone(), b));
    }
    if !bound_variables(n, dc).iter().all(|&b| b) {
        return Err(BoundError::Infinite {
            reason: "some variable is unbound under DC".to_string(),
        });
    }

    fn key(cs: &[DegreeConstraint]) -> String {
        let mut parts: Vec<String> = cs
            .iter()
            .map(|c| format!("{:?}|{:?}|{}", c.x, c.y, c.bound))
            .collect();
        parts.sort();
        parts.join(";")
    }

    let mut best: Option<(ConstraintSet, ModularBound)> = None;
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack: Vec<Vec<DegreeConstraint>> = vec![dc.constraints().to_vec()];
    let mut states = 0usize;

    while let Some(current) = stack.pop() {
        if states >= max_states {
            break;
        }
        let k = key(&current);
        if !seen.insert(k) {
            continue;
        }
        states += 1;
        let cur_set = ConstraintSet::from_constraints(current.clone());
        if cur_set.is_acyclic(n) {
            if let Ok(b) = modular_bound(n, &cur_set) {
                let better = match &best {
                    None => true,
                    Some((_, bb)) => b.log2_bound < bb.log2_bound - 1e-12,
                };
                if better {
                    best = Some((cur_set, b));
                }
            }
            continue;
        }
        // branch: weaken any constraint by removing any single y from Y \ X, keeping
        // every variable bound
        for (ci, c) in current.iter().enumerate() {
            if c.x.is_empty() {
                continue; // cardinality constraints create no G_DC edges
            }
            for &y in &c.y_minus_x() {
                let mut candidate = current.clone();
                let new_y: Vec<usize> = c.y.iter().copied().filter(|&v| v != y).collect();
                if new_y.len() > c.x.len() {
                    let mut weakened = DegreeConstraint::new(c.x.clone(), new_y, c.bound);
                    weakened.guard = c.guard;
                    candidate[ci] = weakened;
                } else {
                    candidate.remove(ci);
                }
                let cand_set = ConstraintSet::from_constraints(candidate.clone());
                if bound_variables(n, &cand_set).iter().all(|&b| b) {
                    stack.push(candidate);
                }
            }
        }
    }

    match best {
        Some(found) => Ok(found),
        None => {
            // fall back to the greedy repair of Proposition 5.2
            let repaired = repair_to_acyclic(dc, n).map_err(|e| BoundError::Infinite {
                reason: e.to_string(),
            })?;
            let b = modular_bound(n, &repaired)?;
            Ok((repaired, b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polymatroid::polymatroid_bound_for_query;
    use wcoj_query::query::examples;

    #[test]
    fn cardinality_only_matches_agm() {
        // With only cardinality constraints the modular LP's dual is exactly the AGM
        // LP: triangle with |R|=|S|=|T|=2^10 gives 15 bits and exponents (1/2,1/2,1/2).
        let q = examples::triangle();
        let dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 1024), ("S", 1024), ("T", 1024)]).unwrap();
        let b = modular_bound(q.num_vars(), &dc).unwrap();
        assert!((b.log2_bound - 15.0).abs() < 1e-6);
        for e in &b.exponents {
            assert!((e - 0.5).abs() < 1e-6);
        }
        // strong duality: sum of exponent * log size = bound
        let dual: f64 = b
            .exponents
            .iter()
            .zip(dc.iter())
            .map(|(e, c)| e * c.log_bound())
            .sum();
        assert!((dual - b.log2_bound).abs() < 1e-6);
        // modular witness: v_A = v_B = v_C = 5
        for v in &b.vertex_values {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn acyclic_chain_constraints_bound() {
        // The paper's (63)-style acyclic set: N_A = 2^7 (card), N_{B|A} = 2^3,
        // N_{C|B} = 2^4, N_{D|C} = 2^5. The modular bound is the product:
        // 7 + 3 + 4 + 5 = 19 bits.
        let q = examples::chain_with_guard();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 1 << 7).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1 << 3).unwrap();
        dc.push_named(&q, &["B"], &["C"], 1 << 4).unwrap();
        dc.push_named(&q, &["C"], &["D"], 1 << 5).unwrap();
        assert!(dc.is_acyclic(4));
        let b = modular_bound(4, &dc).unwrap();
        assert!((b.log2_bound - 19.0).abs() < 1e-6);
        // every exponent is 1 (each constraint used once)
        for e in &b.exponents {
            assert!((e - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn agreement_with_polymatroid_bound_on_acyclic_dc() {
        // Proposition 4.4: for acyclic DC the modular and polymatroid bounds coincide.
        let q = examples::chain_with_guard();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 1 << 6).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1 << 2).unwrap();
        dc.push_named(&q, &["B"], &["C"], 1 << 3).unwrap();
        dc.push_named(&q, &["C"], &["D"], 1 << 4).unwrap();
        let m = modular_bound(4, &dc).unwrap();
        let p = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert!(
            (m.log2_bound - p.log2_bound).abs() < 1e-5,
            "modular {} vs polymatroid {}",
            m.log2_bound,
            p.log2_bound
        );
    }

    #[test]
    fn cyclic_set_rejected_and_repaired() {
        let q = examples::chain_with_guard();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 1 << 7).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1 << 3).unwrap();
        dc.push_named(&q, &["B"], &["C"], 1 << 4).unwrap();
        dc.push_named(&q, &["C"], &["A", "D"], 1 << 5).unwrap();
        assert!(matches!(
            modular_bound(4, &dc).unwrap_err(),
            BoundError::CyclicConstraints
        ));
        let (repaired, bound) = best_acyclic_repair(&dc, 4, 10_000).unwrap();
        assert!(repaired.is_acyclic(4));
        // The only sensible repair drops A from the last constraint's Y, giving
        // 7 + 3 + 4 + 5 = 19 bits.
        assert!((bound.log2_bound - 19.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_variable_detected() {
        let q = examples::triangle();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A", "B"], 100).unwrap();
        // C never bounded
        assert!(matches!(
            modular_bound(3, &dc).unwrap_err(),
            BoundError::Infinite { .. }
        ));
        assert!(matches!(
            best_acyclic_repair(&dc, 3, 100).unwrap_err(),
            BoundError::Infinite { .. }
        ));
    }

    #[test]
    fn empty_relation_short_circuits() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 0), ("S", 4), ("T", 4)]).unwrap();
        let b = modular_bound(3, &dc).unwrap();
        assert_eq!(b.tuple_bound(), 0.0);
    }

    #[test]
    fn best_repair_of_acyclic_set_is_identity() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 8), ("S", 8), ("T", 8)]).unwrap();
        let (repaired, bound) = best_acyclic_repair(&dc, 3, 100).unwrap();
        assert_eq!(repaired, dc);
        assert!((bound.log2_bound - 4.5).abs() < 1e-6);
    }

    #[test]
    fn fd_cycle_repair_preserves_bound_for_simple_fds() {
        // Corollary 5.3: cardinalities + simple FD cycle A<->B. Breaking the cycle
        // must not change the optimal bound.
        let q = examples::triangle();
        let mut dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 256), ("S", 256), ("T", 256)]).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1).unwrap();
        dc.push_named(&q, &["B"], &["A"], 1).unwrap();
        let (repaired, bound) = best_acyclic_repair(&dc, 3, 10_000).unwrap();
        assert!(repaired.is_acyclic(3));
        // With the FD A->B (or B->A) kept, the bound is |T| * 1 = 2^8 = 8 bits:
        // choose v_A + v_C <= 8 (T), v_B <= 0 (FD), maximize v_A + v_B + v_C.
        assert!(
            (bound.log2_bound - 8.0).abs() < 1e-6,
            "got {}",
            bound.log2_bound
        );
    }
}
