//! Set functions on `2^[n]`, represented densely by bitmask.
//!
//! Section 3.2 of the paper works with several classes of non-negative set functions:
//! modular (`M_n`), entropic (`Γ*_n`), polymatroidal (`Γ_n`), and subadditive
//! (`SA_n`), related by the chain of inclusions (34). [`SetFunction`] is the concrete
//! representation used throughout this workspace; predicates test membership in each
//! (finitely checkable) class.

/// A set function `f : 2^[n] → ℝ`, stored densely: `values[mask]` is `f(S)` where bit
/// `i` of `mask` indicates `i ∈ S`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetFunction {
    n: usize,
    values: Vec<f64>,
}

/// Numerical tolerance for the class-membership predicates.
const EPS: f64 = 1e-9;

impl SetFunction {
    /// The zero function on `n` variables.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 25, "dense set functions limited to 25 variables");
        SetFunction {
            n,
            values: vec![0.0; 1 << n],
        }
    }

    /// Build from an explicit table of length `2^n`.
    pub fn from_values(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), 1 << n, "need exactly 2^n values");
        SetFunction { n, values }
    }

    /// The modular function `f(S) = Σ_{i ∈ S} weights[i]` (the class `M_n`).
    pub fn modular(weights: &[f64]) -> Self {
        let n = weights.len();
        let mut f = SetFunction::zero(n);
        for mask in 0u32..(1u32 << n) {
            let mut v = 0.0;
            for (i, w) in weights.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    v += w;
                }
            }
            f.values[mask as usize] = v;
        }
        f
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// `f(S)` for the subset encoded by `mask`.
    pub fn get(&self, mask: u32) -> f64 {
        self.values[mask as usize]
    }

    /// Set `f(S)` for the subset encoded by `mask`.
    pub fn set(&mut self, mask: u32, value: f64) {
        self.values[mask as usize] = value;
    }

    /// `f(S)` where `S` is given as a list of variable indices.
    pub fn get_set(&self, vars: &[usize]) -> f64 {
        self.get(mask_of(vars))
    }

    /// The full-set mask `[n]`.
    pub fn full_mask(&self) -> u32 {
        ((1u64 << self.n) - 1) as u32
    }

    /// `f([n])` — the quantity every bound in the paper maximizes.
    pub fn total(&self) -> f64 {
        self.get(self.full_mask())
    }

    /// Conditional value `f(Y | X) = f(Y) − f(X)` (the chain rule (29)). `X` must be a
    /// subset of `Y`.
    pub fn conditional(&self, y_mask: u32, x_mask: u32) -> f64 {
        debug_assert_eq!(x_mask & !y_mask, 0, "X must be a subset of Y");
        self.get(y_mask) - self.get(x_mask)
    }

    /// Whether `f(∅) = 0` and `f ≥ 0` everywhere.
    pub fn is_nonnegative_grounded(&self) -> bool {
        self.values[0].abs() <= EPS && self.values.iter().all(|&v| v >= -EPS)
    }

    /// Monotonicity (32): `f(X) ≤ f(Y)` whenever `X ⊆ Y`. Checked via the elemental
    /// form `f(S) ≤ f(S ∪ {i})`.
    pub fn is_monotone(&self) -> bool {
        for mask in 0u32..(1u32 << self.n) {
            for i in 0..self.n {
                let bit = 1u32 << i;
                if mask & bit == 0 && self.get(mask) > self.get(mask | bit) + EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Submodularity (33): `f(X ∪ Y) + f(X ∩ Y) ≤ f(X) + f(Y)`. Checked via the
    /// elemental form `f(S ∪ {i}) + f(S ∪ {j}) ≥ f(S ∪ {i,j}) + f(S)`.
    pub fn is_submodular(&self) -> bool {
        for mask in 0u32..(1u32 << self.n) {
            for i in 0..self.n {
                for j in (i + 1)..self.n {
                    let bi = 1u32 << i;
                    let bj = 1u32 << j;
                    if mask & bi == 0 && mask & bj == 0 {
                        let lhs = self.get(mask | bi) + self.get(mask | bj);
                        let rhs = self.get(mask | bi | bj) + self.get(mask);
                        if lhs + EPS < rhs {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Whether `f` is a polymatroid (the class `Γ_n`): grounded, non-negative,
    /// monotone, and submodular.
    pub fn is_polymatroid(&self) -> bool {
        self.is_nonnegative_grounded() && self.is_monotone() && self.is_submodular()
    }

    /// Whether `f` is modular: `f(S) = Σ_{i∈S} f({i})` for every `S`.
    pub fn is_modular(&self) -> bool {
        for mask in 0u32..(1u32 << self.n) {
            let mut sum = 0.0;
            for i in 0..self.n {
                if mask & (1 << i) != 0 {
                    sum += self.get(1 << i);
                }
            }
            if (self.get(mask) - sum).abs() > 1e-7 {
                return false;
            }
        }
        true
    }

    /// Subadditivity: `f(X ∪ Y) ≤ f(X) + f(Y)` for all `X, Y` (the class `SA_n`).
    pub fn is_subadditive(&self) -> bool {
        let full = 1u32 << self.n;
        for x in 0..full {
            for y in 0..full {
                if self.get(x | y) > self.get(x) + self.get(y) + EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Pointwise sum with another set function on the same variables.
    pub fn add(&self, other: &SetFunction) -> SetFunction {
        assert_eq!(self.n, other.n);
        SetFunction {
            n: self.n,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Pointwise scaling by a non-negative constant.
    pub fn scale(&self, c: f64) -> SetFunction {
        SetFunction {
            n: self.n,
            values: self.values.iter().map(|v| v * c).collect(),
        }
    }
}

/// The bitmask of a list of variable indices.
pub fn mask_of(vars: &[usize]) -> u32 {
    vars.iter().fold(0u32, |m, &v| m | (1u32 << v))
}

/// The variable indices of a bitmask, in increasing order.
pub fn vars_of(mask: u32) -> Vec<usize> {
    (0..32).filter(|&i| mask & (1 << i) != 0).collect()
}

/// Iterate over all subsets of `mask` (including `0` and `mask` itself).
pub fn subsets_of(mask: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut sub = mask;
    loop {
        out.push(sub);
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & mask;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_helpers() {
        assert_eq!(mask_of(&[0, 2]), 0b101);
        assert_eq!(vars_of(0b1010), vec![1, 3]);
        assert_eq!(subsets_of(0b101), vec![0b000, 0b001, 0b100, 0b101]);
        assert_eq!(subsets_of(0), vec![0]);
    }

    #[test]
    fn modular_functions_are_polymatroids() {
        let f = SetFunction::modular(&[1.0, 2.0, 0.5]);
        assert!(f.is_modular());
        assert!(f.is_polymatroid());
        assert!(f.is_subadditive());
        assert!((f.total() - 3.5).abs() < 1e-12);
        assert!((f.get_set(&[0, 2]) - 1.5).abs() < 1e-12);
        assert!((f.conditional(0b111, 0b001) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rank_function_is_polymatroid_but_not_modular() {
        // f(S) = min(|S|, 2): the rank function of the uniform matroid U_{2,3}
        let mut f = SetFunction::zero(3);
        for mask in 0u32..8 {
            f.set(mask, (mask.count_ones().min(2)) as f64);
        }
        assert!(f.is_polymatroid());
        assert!(!f.is_modular());
        assert!(f.is_subadditive());
    }

    #[test]
    fn non_monotone_and_non_submodular_detected() {
        let mut f = SetFunction::zero(2);
        f.set(0b01, 2.0);
        f.set(0b10, 2.0);
        f.set(0b11, 1.0); // smaller than f({0}): not monotone
        assert!(!f.is_monotone());
        assert!(f.is_submodular());
        assert!(!f.is_polymatroid());

        // XOR-like: f({i}) = 1, f({0,1}) = 2 is modular; make it supermodular instead
        let mut g = SetFunction::zero(2);
        g.set(0b01, 1.0);
        g.set(0b10, 1.0);
        g.set(0b11, 3.0);
        assert!(g.is_monotone());
        assert!(!g.is_submodular());
        assert!(!g.is_subadditive());
    }

    #[test]
    fn grounding_and_negativity_detected() {
        let mut f = SetFunction::zero(1);
        f.set(0, 0.5);
        assert!(!f.is_nonnegative_grounded());
        let mut g = SetFunction::zero(1);
        g.set(1, -1.0);
        assert!(!g.is_nonnegative_grounded());
    }

    #[test]
    fn add_and_scale() {
        let f = SetFunction::modular(&[1.0, 1.0]);
        let g = f.scale(2.0).add(&f);
        assert!((g.total() - 6.0).abs() < 1e-12);
        assert!(g.is_modular());
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn from_values_checks_length() {
        let _ = SetFunction::from_values(2, vec![0.0; 3]);
    }
}
