//! The AGM bound (Atserias–Grohe–Marx) and the fractional edge cover number.
//!
//! For a query with hypergraph `H` and cardinality constraints `|R_F| ≤ N_F`, the AGM
//! bound (Corollary 4.2) states `|Q| ≤ ∏_F N_F^{δ_F}` for any fractional edge cover
//! `δ`, and the best such bound is obtained by solving the LP (5):
//!
//! ```text
//! minimize   Σ_F δ_F · log2 N_F
//! subject to Σ_{F ∋ v} δ_F ≥ 1   for every variable v
//!            δ ≥ 0
//! ```
//!
//! With unit weights the optimum is the fractional edge cover number `ρ*(H)`, and
//! `|Q| ≤ N^{ρ*}` where `N = max_F N_F` (Grohe–Marx / Alon / Friedgut–Kahn).

use crate::BoundError;
use wcoj_lp::{Cmp, LinearProgram, Sense};
use wcoj_query::{ConjunctiveQuery, Database, Hypergraph};

/// The result of solving the AGM LP.
#[derive(Debug, Clone)]
pub struct AgmBound {
    /// `log2` of the bound on `|Q|`.
    pub log2_bound: f64,
    /// The optimal fractional edge cover, one weight per atom (in atom order).
    pub exponents: Vec<f64>,
    /// `log2 N_F` per atom, as used in the objective.
    pub log_sizes: Vec<f64>,
}

impl AgmBound {
    /// The bound as a tuple count `2^{log2_bound}`.
    pub fn tuple_bound(&self) -> f64 {
        self.log2_bound.exp2()
    }
}

/// Solve the fractional edge cover LP with the given per-edge objective weights
/// (`log2` sizes). Returns `(objective, cover)`.
fn solve_cover_lp(h: &Hypergraph, weights: &[f64]) -> Result<(f64, Vec<f64>), BoundError> {
    if !h.covers_all_vertices() {
        return Err(BoundError::Infinite {
            reason: "some variable occurs in no atom".to_string(),
        });
    }
    let mut lp = LinearProgram::new(Sense::Minimize);
    let vars: Vec<_> = weights
        .iter()
        .enumerate()
        .map(|(f, &w)| lp.add_var(format!("delta_{f}"), w))
        .collect();
    for v in 0..h.num_vertices() {
        let terms: Vec<_> = h
            .edges_containing(v)
            .into_iter()
            .map(|f| (vars[f], 1.0))
            .collect();
        lp.add_constraint(&terms, Cmp::Ge, 1.0);
    }
    let sol = lp.solve()?;
    Ok((sol.objective, sol.primal))
}

/// The fractional edge cover number `ρ*(H)`: the covering LP with unit weights.
pub fn fractional_edge_cover_number(h: &Hypergraph) -> f64 {
    let weights = vec![1.0; h.num_edges()];
    solve_cover_lp(h, &weights)
        .map(|(obj, _)| obj)
        .unwrap_or(f64::INFINITY)
}

/// The AGM bound for `query` given explicit per-atom sizes `N_F` (in atom order).
pub fn agm_bound_from_sizes(
    query: &ConjunctiveQuery,
    sizes: &[u64],
) -> Result<AgmBound, BoundError> {
    if sizes.len() != query.atoms().len() {
        return Err(BoundError::Invalid(format!(
            "expected {} sizes, got {}",
            query.atoms().len(),
            sizes.len()
        )));
    }
    if sizes.contains(&0) {
        // An empty relation forces an empty output; report log2 bound of -inf as 0
        // tuples via a zero bound.
        return Ok(AgmBound {
            log2_bound: f64::NEG_INFINITY,
            exponents: vec![0.0; sizes.len()],
            log_sizes: sizes
                .iter()
                .map(|&s| {
                    if s == 0 {
                        f64::NEG_INFINITY
                    } else {
                        (s as f64).log2()
                    }
                })
                .collect(),
        });
    }
    let log_sizes: Vec<f64> = sizes.iter().map(|&s| (s as f64).log2()).collect();
    let (obj, cover) = solve_cover_lp(&query.hypergraph(), &log_sizes)?;
    Ok(AgmBound {
        log2_bound: obj,
        exponents: cover,
        log_sizes,
    })
}

/// The AGM bound for `query` over the concrete database `db`, using the actual
/// relation sizes as the cardinality constraints.
pub fn agm_bound(query: &ConjunctiveQuery, db: &Database) -> Result<AgmBound, BoundError> {
    let sizes: Result<Vec<u64>, _> = (0..query.atoms().len())
        .map(|i| {
            // atom_size avoids materializing delta-backed (live) relations
            db.atom_size(query, i)
                .map(|n| n as u64)
                .map_err(|e| BoundError::Database(e.to_string()))
        })
        .collect();
    agm_bound_from_sizes(query, &sizes?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_query::query::examples;
    use wcoj_storage::Relation;

    #[test]
    fn rho_star_of_standard_hypergraphs() {
        assert!((fractional_edge_cover_number(&Hypergraph::cycle(3)) - 1.5).abs() < 1e-9);
        assert!((fractional_edge_cover_number(&Hypergraph::cycle(4)) - 2.0).abs() < 1e-9);
        assert!((fractional_edge_cover_number(&Hypergraph::cycle(5)) - 2.5).abs() < 1e-9);
        // LW(k) has rho* = k/(k-1)
        assert!((fractional_edge_cover_number(&Hypergraph::loomis_whitney(3)) - 1.5).abs() < 1e-9);
        assert!(
            (fractional_edge_cover_number(&Hypergraph::loomis_whitney(4)) - 4.0 / 3.0).abs() < 1e-9
        );
        assert!(
            (fractional_edge_cover_number(&Hypergraph::loomis_whitney(5)) - 5.0 / 4.0).abs() < 1e-9
        );
        // k-clique has rho* = k/2
        assert!((fractional_edge_cover_number(&Hypergraph::clique(4)) - 2.0).abs() < 1e-9);
        assert!((fractional_edge_cover_number(&Hypergraph::clique(5)) - 2.5).abs() < 1e-9);
        // star with k leaves needs every edge: rho* = k
        assert!((fractional_edge_cover_number(&Hypergraph::star(4)) - 4.0).abs() < 1e-9);
        // uncovered vertex: infinite
        assert!(fractional_edge_cover_number(&Hypergraph::new(2, vec![vec![0]])).is_infinite());
    }

    #[test]
    fn triangle_agm_equal_sizes() {
        let q = examples::triangle();
        let b = agm_bound_from_sizes(&q, &[1 << 10, 1 << 10, 1 << 10]).unwrap();
        assert!((b.log2_bound - 15.0).abs() < 1e-6);
        for e in &b.exponents {
            assert!((e - 0.5).abs() < 1e-6);
        }
        assert!((b.tuple_bound() - 32768.0).abs() < 1e-2);
    }

    #[test]
    fn triangle_agm_skewed_sizes_picks_integral_cover() {
        // |T| enormous: cover A and C through R and S instead (alpha = beta = 1).
        let q = examples::triangle();
        let b = agm_bound_from_sizes(&q, &[4, 4, 1 << 20]).unwrap();
        assert!((b.log2_bound - 4.0).abs() < 1e-6);
        assert!(b.exponents[2].abs() < 1e-6);
    }

    #[test]
    fn agm_wrong_arity_and_empty_relation() {
        let q = examples::triangle();
        assert!(matches!(
            agm_bound_from_sizes(&q, &[1, 2]).unwrap_err(),
            BoundError::Invalid(_)
        ));
        let b = agm_bound_from_sizes(&q, &[0, 5, 5]).unwrap();
        assert_eq!(b.log2_bound, f64::NEG_INFINITY);
        assert_eq!(b.tuple_bound(), 0.0);
    }

    #[test]
    fn agm_bound_from_database() {
        let q = examples::triangle();
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", (0..16).map(|i| (i / 4, i % 4))),
        );
        db.insert(
            "S",
            Relation::from_pairs("B", "C", (0..16).map(|i| (i / 4, i % 4))),
        );
        db.insert(
            "T",
            Relation::from_pairs("A", "C", (0..16).map(|i| (i / 4, i % 4))),
        );
        let b = agm_bound(&q, &db).unwrap();
        // |R|=|S|=|T|=16, bound = 16^{3/2} = 64
        assert!((b.tuple_bound() - 64.0).abs() < 1e-6);
        // the bound really is an upper bound on the true output (complete tripartite
        // structure here gives exactly 4*4*4 = 64 triangles)
        let missing = {
            let mut db2 = Database::new();
            db2.insert("R", Relation::from_pairs("A", "B", vec![(1, 2)]));
            db2
        };
        assert!(matches!(
            agm_bound(&q, &missing).unwrap_err(),
            BoundError::Database(_)
        ));
    }

    #[test]
    fn agm_exponents_form_a_fractional_edge_cover() {
        let q = examples::four_cycle();
        let b = agm_bound_from_sizes(&q, &[100, 200, 300, 400]).unwrap();
        assert!(q.hypergraph().is_fractional_edge_cover(&b.exponents));
        // bound value consistent with exponents
        let recomputed: f64 = b
            .exponents
            .iter()
            .zip(&b.log_sizes)
            .map(|(d, l)| d * l)
            .sum();
        assert!((recomputed - b.log2_bound).abs() < 1e-6);
    }
}
