//! Numeric verification of **Friedgut's inequality** (Theorem 4.1) on concrete
//! databases.
//!
//! For a hypergraph `H = ([n], E)`, a fractional edge cover `δ`, and non-negative
//! weight functions `w_F` over the tuples of each edge,
//!
//! ```text
//! Σ_{a ∈ ∏ domains} ∏_F w_F(a_F)  ≤  ∏_F ( Σ_{a_F} w_F(a_F)^{1/δ_F} )^{δ_F}.
//! ```
//!
//! With 0/1 indicator weights `w_F = 1_{R_F}` the left side is `|Q(D)|` and the right
//! side is `∏ |R_F|^{δ_F}` — the AGM bound (Corollary 4.2). This module evaluates
//! both sides exactly on concrete databases so tests can confirm the inequality, the
//! specialization to AGM, and the tightness cases the paper discusses.
//!
//! Edges with `δ_F = 0` contribute the limit factor
//! `lim_{δ→0} (Σ w^{1/δ})^δ = max_a w_F(a)`.

use crate::agm::agm_bound;
use crate::BoundError;
use std::collections::HashMap;
use wcoj_query::{ConjunctiveQuery, Database};
use wcoj_storage::ops::nested_loop_join;
use wcoj_storage::{Relation, Tuple};

/// Per-edge weight function: tuple (in the atom's variable order) → non-negative
/// weight. Tuples not present have weight 0.
pub type EdgeWeights = HashMap<Tuple, f64>;

/// Both sides of Friedgut's inequality, evaluated exactly.
#[derive(Debug, Clone)]
pub struct FriedgutCheck {
    /// The left-hand side `Σ_a ∏_F w_F(a_F)`.
    pub lhs: f64,
    /// The right-hand side `∏_F (Σ w_F^{1/δ_F})^{δ_F}`.
    pub rhs: f64,
}

impl FriedgutCheck {
    /// Whether the inequality holds (up to relative numerical tolerance).
    pub fn holds(&self) -> bool {
        self.lhs <= self.rhs * (1.0 + 1e-9) + 1e-9
    }
}

/// The right-hand-side factor of a single edge.
fn edge_factor(weights: &EdgeWeights, delta: f64) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    if delta <= 1e-12 {
        // limit: (Σ w^{1/δ})^δ → max w as δ → 0
        return weights.values().cloned().fold(0.0f64, f64::max);
    }
    let sum: f64 = weights.values().map(|&w| w.powf(1.0 / delta)).sum();
    sum.powf(delta)
}

/// Evaluate both sides of Friedgut's inequality for `query` with explicit per-atom
/// weight functions (tuples in each atom's variable order) and exponents `delta`.
///
/// `delta` must be a fractional edge cover of the query hypergraph; a non-cover is
/// rejected with [`BoundError::Invalid`] since the inequality is only guaranteed for
/// covers.
pub fn friedgut_check(
    query: &ConjunctiveQuery,
    weights: &[EdgeWeights],
    delta: &[f64],
) -> Result<FriedgutCheck, BoundError> {
    let m = query.atoms().len();
    if weights.len() != m || delta.len() != m {
        return Err(BoundError::Invalid(format!(
            "expected {m} weight functions and exponents, got {} and {}",
            weights.len(),
            delta.len()
        )));
    }
    if !query.hypergraph().is_fractional_edge_cover(delta) {
        return Err(BoundError::Invalid(
            "delta is not a fractional edge cover".to_string(),
        ));
    }

    // LHS: any assignment with a non-zero product has every a_F in the support of
    // w_F, so it suffices to join the supports and sum the products over the output.
    let supports: Vec<Relation> = (0..m)
        .map(|f| {
            let names = query.atom_var_names(f);
            let rows: Vec<Tuple> = weights[f]
                .iter()
                .filter(|(_, &w)| w > 0.0)
                .map(|(t, _)| t.clone())
                .collect();
            Relation::try_from_rows(
                wcoj_storage::Schema::try_new(names.iter().map(|s| s.to_string()).collect())
                    .map_err(|e| BoundError::Database(e.to_string()))?,
                rows,
            )
            .map_err(|e| BoundError::Database(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let support_refs: Vec<&Relation> = supports.iter().collect();
    let joined =
        nested_loop_join(&support_refs).map_err(|e| BoundError::Database(e.to_string()))?;

    let atom_positions: Vec<Vec<usize>> = (0..m)
        .map(|f| {
            query
                .atom_var_names(f)
                .iter()
                .map(|name| joined.schema().require(name).expect("joined schema"))
                .collect()
        })
        .collect();
    let mut lhs = 0.0f64;
    for t in joined.iter() {
        let mut product = 1.0f64;
        for (wf, positions) in weights.iter().zip(&atom_positions) {
            let key: Tuple = positions.iter().map(|&p| t[p]).collect();
            product *= wf.get(&key).copied().unwrap_or(0.0);
        }
        lhs += product;
    }

    let rhs = weights
        .iter()
        .zip(delta)
        .map(|(wf, &d)| edge_factor(wf, d))
        .product();
    Ok(FriedgutCheck { lhs, rhs })
}

/// Indicator weights for every tuple of each atom relation of `db` — the AGM
/// specialization of Friedgut's inequality.
pub fn indicator_weights(
    query: &ConjunctiveQuery,
    db: &Database,
) -> Result<Vec<EdgeWeights>, BoundError> {
    (0..query.atoms().len())
        .map(|f| {
            let rel = db
                .relation_for_atom(query, f)
                .map_err(|e| BoundError::Database(e.to_string()))?;
            Ok(rel.iter().map(|t| (t.clone(), 1.0)).collect())
        })
        .collect()
}

/// Verify the AGM specialization on a concrete database: with indicator weights and
/// the *optimal* fractional edge cover from the AGM LP, the left side is `|Q(D)|` and
/// the right side is the AGM tuple bound.
pub fn agm_specialization(
    query: &ConjunctiveQuery,
    db: &Database,
) -> Result<FriedgutCheck, BoundError> {
    let weights = indicator_weights(query, db)?;
    let bound = agm_bound(query, db)?;
    friedgut_check(query, &weights, &bound.exponents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_query::query::examples;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", (0..16).map(|i| (i / 4, i % 4))),
        );
        db.insert(
            "S",
            Relation::from_pairs("B", "C", (0..16).map(|i| (i / 4, i % 4))),
        );
        db.insert(
            "T",
            Relation::from_pairs("A", "C", (0..16).map(|i| (i / 4, i % 4))),
        );
        db
    }

    #[test]
    fn agm_specialization_is_tight_on_complete_tripartite_data() {
        // Complete 4x4 bipartite pieces: |Q| = 64 = 16^{3/2}, the AGM worst case.
        let q = examples::triangle();
        let check = agm_specialization(&q, &triangle_db()).unwrap();
        assert!(check.holds());
        assert!((check.lhs - 64.0).abs() < 1e-9);
        assert!((check.rhs - 64.0).abs() < 1e-6, "rhs = {}", check.rhs);
    }

    #[test]
    fn agm_specialization_on_sparse_data_is_slack() {
        let q = examples::triangle();
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", vec![(1, 2), (2, 3), (1, 3)]),
        );
        db.insert(
            "S",
            Relation::from_pairs("B", "C", vec![(2, 3), (3, 1), (3, 4)]),
        );
        db.insert(
            "T",
            Relation::from_pairs("A", "C", vec![(1, 3), (2, 1), (1, 4)]),
        );
        let check = agm_specialization(&q, &db).unwrap();
        assert!(check.holds());
        assert!((check.lhs - 3.0).abs() < 1e-9); // 3 triangles
        assert!(check.lhs < check.rhs);
    }

    #[test]
    fn weighted_inequality_holds_for_non_indicator_weights() {
        let q = examples::triangle();
        let db = triangle_db();
        let mut weights = indicator_weights(&q, &db).unwrap();
        // perturb the weights deterministically away from 0/1
        for (f, wf) in weights.iter_mut().enumerate() {
            for (i, (_, w)) in wf.iter_mut().enumerate() {
                *w = 0.25 + ((i + f) % 5) as f64 * 0.5;
            }
        }
        let check = friedgut_check(&q, &weights, &[0.5, 0.5, 0.5]).unwrap();
        assert!(check.lhs > 0.0);
        assert!(check.holds(), "lhs {} rhs {}", check.lhs, check.rhs);
    }

    #[test]
    fn integral_cover_reduces_to_cauchy_schwarz_style_bound() {
        // cover (1, 1, 0): rhs = |R| * |S| * max_T w = 16 * 16 * 1
        let q = examples::triangle();
        let db = triangle_db();
        let weights = indicator_weights(&q, &db).unwrap();
        let check = friedgut_check(&q, &weights, &[1.0, 1.0, 0.0]).unwrap();
        assert!(check.holds());
        assert!((check.rhs - 256.0).abs() < 1e-6);
    }

    #[test]
    fn non_cover_rejected() {
        let q = examples::triangle();
        let db = triangle_db();
        let weights = indicator_weights(&q, &db).unwrap();
        assert!(matches!(
            friedgut_check(&q, &weights, &[0.4, 0.4, 0.4]).unwrap_err(),
            BoundError::Invalid(_)
        ));
        assert!(matches!(
            friedgut_check(&q, &weights, &[0.5, 0.5]).unwrap_err(),
            BoundError::Invalid(_)
        ));
    }

    #[test]
    fn empty_support_gives_zero_on_both_sides() {
        let q = examples::triangle();
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_pairs("A", "B", Vec::<(u64, u64)>::new()),
        );
        db.insert("S", Relation::from_pairs("B", "C", vec![(1, 2)]));
        db.insert("T", Relation::from_pairs("A", "C", vec![(1, 2)]));
        let weights = indicator_weights(&q, &db).unwrap();
        let check = friedgut_check(&q, &weights, &[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(check.lhs, 0.0);
        assert_eq!(check.rhs, 0.0);
        assert!(check.holds());
    }
}
