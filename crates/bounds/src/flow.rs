//! Shannon-flow inequalities (Definition 5 of the paper).
//!
//! A non-negative coefficient vector `δ = (δ_{Y|X})` defines the inequality
//! `h([n]) ≤ Σ δ_{Y|X} · (h(Y) − h(X))`. It is a *Shannon-flow inequality* when it
//! holds for every polymatroid `h ∈ Γ_n`. Proposition 5.4 characterizes these as the
//! feasible solutions of the dual LP (72); here we test the property directly with the
//! Shannon-cone LP of [`crate::polymatroid`]: the inequality holds for all
//! polymatroids iff
//!
//! ```text
//! max { h([n]) − Σ δ_{Y|X}·(h(Y) − h(X))  :  h ∈ Γ_n, h([n]) ≤ 1 }  ≤  0.
//! ```
//!
//! (The cone is scale-invariant, so normalizing `h([n]) ≤ 1` loses nothing; without a
//! normalization the LP would be unbounded whenever the inequality fails.)
//!
//! Shearer's inequality (Corollary 5.5) is the special case where every `X = ∅` and
//! the `Y` are the hyperedges: then `δ` is a Shannon-flow coefficient vector iff it is
//! a fractional edge cover.

use crate::polymatroid::build_shannon_lp;
use crate::setfn::{mask_of, SetFunction};
use crate::BoundError;
use wcoj_lp::Cmp;
use wcoj_query::{ConstraintSet, Hypergraph};

/// A sparse coefficient vector `δ ∈ R_+^P`: terms `(X, Y, δ_{Y|X})` with `X ⊆ Y`
/// encoded as bitmasks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaVector {
    terms: Vec<(u32, u32, f64)>,
}

impl DeltaVector {
    /// An empty coefficient vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `coeff` to the coefficient of the term `h(Y | X)`.
    pub fn add(&mut self, x_mask: u32, y_mask: u32, coeff: f64) {
        assert_eq!(x_mask & !y_mask, 0, "X must be a subset of Y");
        assert!(coeff >= 0.0, "Shannon-flow coefficients are non-negative");
        if let Some(t) = self
            .terms
            .iter_mut()
            .find(|(x, y, _)| *x == x_mask && *y == y_mask)
        {
            t.2 += coeff;
        } else {
            self.terms.push((x_mask, y_mask, coeff));
        }
    }

    /// Add a term given variable-index slices instead of masks.
    pub fn add_sets(&mut self, x: &[usize], y: &[usize], coeff: f64) {
        let x_mask = mask_of(x);
        let y_mask = mask_of(y) | x_mask;
        self.add(x_mask, y_mask, coeff);
    }

    /// The terms `(X, Y, δ)`.
    pub fn terms(&self) -> &[(u32, u32, f64)] {
        &self.terms
    }

    /// Evaluate the right-hand side `Σ δ_{Y|X} (h(Y) − h(X))` on a concrete set
    /// function.
    pub fn evaluate(&self, h: &SetFunction) -> f64 {
        self.terms
            .iter()
            .map(|&(x, y, d)| d * h.conditional(y, x))
            .sum()
    }

    /// The coefficient vector induced by the degree constraints and dual values of a
    /// bound computation: `δ_{Y|X} = dual` for each constraint. This is how PANDA
    /// obtains its Shannon-flow inequality (step 1 of Section 5.2.3).
    pub fn from_constraint_duals(dc: &ConstraintSet, duals: &[f64]) -> Self {
        let mut dv = DeltaVector::new();
        for (c, &d) in dc.iter().zip(duals) {
            if d > 1e-12 {
                dv.add(mask_of(&c.x), mask_of(&c.y), d);
            }
        }
        dv
    }

    /// The Shearer-style vector `δ_F` over the edges of a hypergraph (all `X = ∅`).
    pub fn from_edge_weights(h: &Hypergraph, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), h.num_edges());
        let mut dv = DeltaVector::new();
        for (e, &w) in h.edges().iter().zip(weights) {
            if w > 0.0 {
                dv.add(0, mask_of(e), w);
            }
        }
        dv
    }
}

/// Decide whether `h([n]) ≤ ⟨δ, h⟩` holds for every polymatroid on `n` variables.
pub fn is_shannon_flow_inequality(n: usize, delta: &DeltaVector) -> Result<bool, BoundError> {
    let full: u32 = ((1u64 << n) - 1) as u32;
    // objective: h([n]) - sum delta (h(Y) - h(X))
    let mut obj: Vec<(u32, f64)> = vec![(full, 1.0)];
    for &(x, y, d) in delta.terms() {
        obj.push((y, -d));
        if x != 0 {
            obj.push((x, d));
        }
    }
    let mut lp = build_shannon_lp(n, &obj)?;
    // normalization: h([n]) <= 1
    lp.add_constraint(&[(full, 1.0)], Cmp::Le, 1.0);
    let sol = lp.lp.solve()?;
    Ok(sol.objective <= 1e-7)
}

/// Verify Shearer's lemma / Corollary 5.5 both ways on a concrete weight vector:
/// returns `(is_cover, is_flow)`, which must agree.
pub fn shearer_check(h: &Hypergraph, weights: &[f64]) -> Result<(bool, bool), BoundError> {
    let is_cover = h.is_fractional_edge_cover(weights);
    let dv = DeltaVector::from_edge_weights(h, weights);
    let is_flow = is_shannon_flow_inequality(h.num_vertices(), &dv)?;
    Ok((is_cover, is_flow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_query::query::examples;

    #[test]
    fn shearer_triangle_half_weights() {
        let h = Hypergraph::cycle(3);
        let (cover, flow) = shearer_check(&h, &[0.5, 0.5, 0.5]).unwrap();
        assert!(cover && flow);
        // (0.4, 0.4, 0.4) is not a cover, and correspondingly not a flow inequality
        let (cover, flow) = shearer_check(&h, &[0.4, 0.4, 0.4]).unwrap();
        assert!(!cover && !flow);
        // integral cover (1, 1, 0)
        let (cover, flow) = shearer_check(&h, &[1.0, 1.0, 0.0]).unwrap();
        assert!(cover && flow);
    }

    #[test]
    fn shearer_loomis_whitney() {
        let h = Hypergraph::loomis_whitney(4);
        let w = vec![1.0 / 3.0; 4];
        let (cover, flow) = shearer_check(&h, &w).unwrap();
        assert!(cover && flow);
        let w_bad = vec![0.3; 4];
        let (cover, flow) = shearer_check(&h, &w_bad).unwrap();
        assert!(!cover && !flow);
    }

    #[test]
    fn example_one_inequality_is_shannon_flow() {
        // h(ABCD) <= 1/2 [h(AB) + h(BC) + h(CD) + h(ACD|AC) + h(ABD|BD)]
        // with A=0, B=1, C=2, D=3.
        let mut dv = DeltaVector::new();
        dv.add_sets(&[], &[0, 1], 0.5);
        dv.add_sets(&[], &[1, 2], 0.5);
        dv.add_sets(&[], &[2, 3], 0.5);
        dv.add_sets(&[0, 2], &[3], 0.5);
        dv.add_sets(&[1, 3], &[0], 0.5);
        assert!(is_shannon_flow_inequality(4, &dv).unwrap());
        // dropping one term breaks it
        let mut dv_bad = DeltaVector::new();
        dv_bad.add_sets(&[], &[0, 1], 0.5);
        dv_bad.add_sets(&[], &[1, 2], 0.5);
        dv_bad.add_sets(&[], &[2, 3], 0.5);
        dv_bad.add_sets(&[0, 2], &[3], 0.5);
        assert!(!is_shannon_flow_inequality(4, &dv_bad).unwrap());
    }

    #[test]
    fn triangle_degree_version() {
        // h(ABC) <= h(AB) + h(C | B) is a Shannon-flow inequality (chain + mono);
        // h(ABC) <= h(AB) + 0.5 h(C|B) is not.
        let mut dv = DeltaVector::new();
        dv.add_sets(&[], &[0, 1], 1.0);
        dv.add_sets(&[1], &[2], 1.0);
        assert!(is_shannon_flow_inequality(3, &dv).unwrap());
        let mut dv2 = DeltaVector::new();
        dv2.add_sets(&[], &[0, 1], 1.0);
        dv2.add_sets(&[1], &[2], 0.5);
        assert!(!is_shannon_flow_inequality(3, &dv2).unwrap());
    }

    #[test]
    fn duals_of_polymatroid_bound_are_shannon_flow() {
        // For any degree-constraint set, the optimal dual of the polymatroid LP is a
        // Shannon-flow coefficient vector (Proposition 5.4): check it on the triangle
        // with an FD.
        let q = examples::triangle();
        let mut dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 64), ("S", 64), ("T", 64)]).unwrap();
        dc.push_named(&q, &["A"], &["B"], 4).unwrap();
        let b = crate::polymatroid::polymatroid_bound_for_query(&q, &dc).unwrap();
        let dv = DeltaVector::from_constraint_duals(&dc, &b.constraint_duals);
        assert!(is_shannon_flow_inequality(3, &dv).unwrap());
    }

    #[test]
    fn evaluate_on_concrete_polymatroid() {
        let mut dv = DeltaVector::new();
        dv.add_sets(&[], &[0, 1], 0.5);
        dv.add_sets(&[], &[1, 2], 0.5);
        dv.add_sets(&[], &[0, 2], 0.5);
        // on the modular function with all singletons = 1, LHS h([3]) = 3 and each
        // pair term = 2, so RHS = 3 and the inequality is tight.
        let h = SetFunction::modular(&[1.0, 1.0, 1.0]);
        assert!((dv.evaluate(&h) - 3.0).abs() < 1e-12);
        assert!(h.total() <= dv.evaluate(&h) + 1e-12);
    }

    #[test]
    fn delta_vector_accumulates_and_validates() {
        let mut dv = DeltaVector::new();
        dv.add(0b001, 0b011, 0.25);
        dv.add(0b001, 0b011, 0.25);
        assert_eq!(dv.terms().len(), 1);
        assert!((dv.terms()[0].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn x_not_subset_of_y_panics() {
        let mut dv = DeltaVector::new();
        dv.add(0b100, 0b011, 1.0);
    }
}
