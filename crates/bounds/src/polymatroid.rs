//! The polymatroid bound (44)/(68): maximize `h([n])` over all polymatroids satisfying
//! the degree constraints.
//!
//! The LP has one variable `h(S)` per non-empty subset `S ⊆ [n]` and the *elemental*
//! Shannon constraints, which generate the whole Shannon cone `Γ_n`:
//!
//! * monotonicity at the top: `h([n]) − h([n] \ {i}) ≥ 0` for every `i`;
//! * conditioned submodularity: `h(S ∪ {i}) + h(S ∪ {j}) − h(S ∪ {i,j}) − h(S) ≥ 0`
//!   for every pair `i ≠ j` and every `S ⊆ [n] \ {i, j}`;
//!
//! plus one degree constraint `h(Y) − h(X) ≤ log2 N_{Y|X}` per element of `DC`.
//!
//! The LP is exponential in the number of query variables (the paper discusses why
//! this is unacceptable for 20+ variable OLAP queries and gives Proposition 4.4 as the
//! remedy); here it is exact and fine for the `n ≤ 8` queries of the experiments.

use crate::setfn::SetFunction;
use crate::BoundError;
use wcoj_lp::{Cmp, LinearProgram, LpError, Sense, VarId};
use wcoj_query::{ConjunctiveQuery, ConstraintSet};

/// Maximum number of query variables accepted by the exponential LP.
pub const MAX_VARS: usize = 10;

/// The result of solving the polymatroid LP.
#[derive(Debug, Clone)]
pub struct PolymatroidBound {
    /// `log2` of the bound on `|Q|` (i.e. the LP optimum `h*([n])`).
    pub log2_bound: f64,
    /// The optimal polymatroid `h*`.
    pub h: SetFunction,
    /// Dual value `δ_{Y|X}` of each degree constraint, in `DC` order. By LP duality
    /// (equation (73) of the paper) `log2_bound = Σ δ_{Y|X} · log2 N_{Y|X}`, and the
    /// `δ` vector is the coefficient vector of a Shannon-flow inequality
    /// (Proposition 5.4).
    pub constraint_duals: Vec<f64>,
}

impl PolymatroidBound {
    /// The bound as a tuple count `2^{log2_bound}`.
    pub fn tuple_bound(&self) -> f64 {
        self.log2_bound.exp2()
    }
}

/// A partially-built Shannon-cone LP: one variable per non-empty subset plus all
/// elemental Shannon constraints. Callers add their own objective terms and extra
/// constraints before solving. Used by both the polymatroid bound and the
/// Shannon-flow-inequality test in [`crate::flow`].
#[derive(Debug)]
pub struct ShannonLp {
    /// The LP under construction (maximization).
    pub lp: LinearProgram,
    /// `vars[mask]` is the LP variable for `h(S)` (`mask > 0`); index 0 is unused.
    pub vars: Vec<Option<VarId>>,
    /// Number of ground variables `n`.
    pub n: usize,
}

impl ShannonLp {
    /// The LP variable for `h(S)`; panics on the empty set.
    pub fn var(&self, mask: u32) -> VarId {
        self.vars[mask as usize].expect("h(emptyset) is not a variable")
    }

    /// Add a linear constraint `Σ coeff · h(S)  cmp  rhs` given as (mask, coeff)
    /// pairs; the empty-set mask contributes nothing (h(∅) = 0).
    pub fn add_constraint(&mut self, terms: &[(u32, f64)], cmp: Cmp, rhs: f64) {
        let lp_terms: Vec<(VarId, f64)> = terms
            .iter()
            .filter(|(m, _)| *m != 0)
            .map(|&(m, c)| (self.var(m), c))
            .collect();
        self.lp.add_constraint(&lp_terms, cmp, rhs);
    }
}

/// Build the Shannon-cone LP skeleton over `n` variables with the objective
/// `maximize Σ objective[mask] · h(S)` (only non-zero entries need be present).
pub fn build_shannon_lp(n: usize, objective: &[(u32, f64)]) -> Result<ShannonLp, BoundError> {
    if n == 0 || n > MAX_VARS {
        return Err(BoundError::TooManyVariables(n));
    }
    let full: u32 = ((1u64 << n) - 1) as u32;
    let mut obj = vec![0.0; (full as usize) + 1];
    for &(m, c) in objective {
        obj[m as usize] += c;
    }

    let mut lp = LinearProgram::new(Sense::Maximize);
    let mut vars: Vec<Option<VarId>> = vec![None; (full as usize) + 1];
    for mask in 1..=full {
        vars[mask as usize] = Some(lp.add_var(format!("h_{mask:b}"), obj[mask as usize]));
    }
    let mut shannon = ShannonLp { lp, vars, n };

    // Monotonicity at the top set: h([n]) - h([n] \ {i}) >= 0.
    for i in 0..n {
        let without = full & !(1u32 << i);
        let mut terms = vec![(full, 1.0)];
        if without != 0 {
            terms.push((without, -1.0));
        }
        shannon.add_constraint(&terms, Cmp::Ge, 0.0);
    }

    // Conditioned submodularity: h(S+i) + h(S+j) - h(S+i+j) - h(S) >= 0.
    for i in 0..n {
        for j in (i + 1)..n {
            let bi = 1u32 << i;
            let bj = 1u32 << j;
            let rest = full & !(bi | bj);
            // enumerate subsets S of `rest`
            let mut s = rest;
            loop {
                let mut terms = vec![(s | bi, 1.0), (s | bj, 1.0), (s | bi | bj, -1.0)];
                if s != 0 {
                    terms.push((s, -1.0));
                }
                shannon.add_constraint(&terms, Cmp::Ge, 0.0);
                if s == 0 {
                    break;
                }
                s = (s - 1) & rest;
            }
        }
    }
    Ok(shannon)
}

/// Compute the polymatroid bound `max { h([n]) : h ∈ Γ_n ∩ H_DC }` for a query with
/// `n` variables under degree constraints `dc`.
///
/// Degree constraints are added *after* the Shannon skeleton, so their dual values are
/// the trailing entries of the LP dual — these are returned as `constraint_duals`.
pub fn polymatroid_bound(n: usize, dc: &ConstraintSet) -> Result<PolymatroidBound, BoundError> {
    if dc.iter().any(|c| c.bound == 0) {
        // an empty guard relation: the output is empty
        return Ok(PolymatroidBound {
            log2_bound: f64::NEG_INFINITY,
            h: SetFunction::zero(n),
            constraint_duals: vec![0.0; dc.len()],
        });
    }
    let full: u32 = ((1u64 << n) - 1) as u32;
    let mut shannon = build_shannon_lp(n, &[(full, 1.0)])?;

    // Remember how many constraints the skeleton used, so we can find the duals of the
    // degree constraints afterwards.
    let skeleton_rows = shannon.lp.num_constraints();

    for c in dc.iter() {
        let y_mask = crate::setfn::mask_of(&c.y);
        let x_mask = crate::setfn::mask_of(&c.x);
        let mut terms = vec![(y_mask, 1.0)];
        if x_mask != 0 {
            terms.push((x_mask, -1.0));
        }
        shannon.add_constraint(&terms, Cmp::Le, c.log_bound());
    }

    let sol = match shannon.lp.solve() {
        Ok(s) => s,
        Err(LpError::Unbounded) => {
            return Err(BoundError::Infinite {
                reason: "degree constraints do not bound every variable".to_string(),
            })
        }
        Err(e) => return Err(e.into()),
    };

    let mut h = SetFunction::zero(n);
    for mask in 1..=full {
        h.set(mask, sol.primal[shannon.var(mask)]);
    }
    let constraint_duals: Vec<f64> = (0..dc.len()).map(|i| sol.dual[skeleton_rows + i]).collect();
    Ok(PolymatroidBound {
        log2_bound: sol.objective,
        h,
        constraint_duals,
    })
}

/// Convenience wrapper taking the query (for its variable count).
pub fn polymatroid_bound_for_query(
    query: &ConjunctiveQuery,
    dc: &ConstraintSet,
) -> Result<PolymatroidBound, BoundError> {
    polymatroid_bound(query.num_vars(), dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_query::query::examples;
    use wcoj_query::DegreeConstraint;

    #[test]
    fn triangle_cardinality_only_matches_agm() {
        // With only cardinality constraints the polymatroid bound equals the AGM bound
        // (Table 1, first row): for |R|=|S|=|T|=2^10 it is 2^15.
        let q = examples::triangle();
        let dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 1024), ("S", 1024), ("T", 1024)]).unwrap();
        let b = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert!((b.log2_bound - 15.0).abs() < 1e-6);
        assert!(b.h.is_polymatroid());
        // duals are the Shearer coefficients (1/2, 1/2, 1/2); their weighted sum
        // reproduces the bound (strong duality, equation (73))
        let dual_obj: f64 = b
            .constraint_duals
            .iter()
            .zip(dc.iter())
            .map(|(d, c)| d * c.log_bound())
            .sum();
        assert!((dual_obj - b.log2_bound).abs() < 1e-6);
        for d in &b.constraint_duals {
            assert!((d - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn fd_constraints_tighten_the_bound() {
        // Triangle with cardinalities 2^10 plus the FD A -> B (guarded by R).
        // Intuition: once A is fixed B is determined, so the output is at most
        // |T| = 2^10 * 1 ... the polymatroid bound drops from 15 to 10.
        let q = examples::triangle();
        let mut dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 1024), ("S", 1024), ("T", 1024)]).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1).unwrap();
        let b = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert!(
            b.log2_bound < 10.0 + 1e-6,
            "FD should cap the bound at |T|: got {}",
            b.log2_bound
        );
        assert!(b.log2_bound > 10.0 - 1e-6);
    }

    #[test]
    fn degree_constraints_interpolate() {
        // Triangle, |R|=|S|=|T|=2^10, deg_R(B|A) <= 2^d. As d grows from 0 to 10 the
        // bound grows monotonically from 10 to 15.
        let q = examples::triangle();
        let mut last = 0.0;
        for d in [0u32, 2, 5, 10] {
            let mut dc =
                ConstraintSet::all_cardinalities(&q, &[("R", 1024), ("S", 1024), ("T", 1024)])
                    .unwrap();
            dc.push_named(&q, &["A"], &["B"], 1u64 << d).unwrap();
            let b = polymatroid_bound_for_query(&q, &dc).unwrap();
            assert!(b.log2_bound >= last - 1e-6, "bound must be monotone in d");
            last = b.log2_bound;
            assert!(b.log2_bound <= 15.0 + 1e-6);
        }
        assert!((last - 15.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_variable_detected() {
        // A single cardinality constraint on {A,B} says nothing about C: infinite.
        let q = examples::triangle();
        let dc =
            ConstraintSet::from_constraints(vec![DegreeConstraint::cardinality(vec![0, 1], 1024)]);
        assert!(matches!(
            polymatroid_bound_for_query(&q, &dc).unwrap_err(),
            BoundError::Infinite { .. }
        ));
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 0), ("S", 10), ("T", 10)]).unwrap();
        let b = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert_eq!(b.log2_bound, f64::NEG_INFINITY);
        assert_eq!(b.tuple_bound(), 0.0);
    }

    #[test]
    fn too_many_variables_rejected() {
        let dc = ConstraintSet::new();
        assert!(matches!(
            polymatroid_bound(MAX_VARS + 1, &dc).unwrap_err(),
            BoundError::TooManyVariables(_)
        ));
        assert!(matches!(
            build_shannon_lp(0, &[]).unwrap_err(),
            BoundError::TooManyVariables(0)
        ));
    }

    #[test]
    fn example_one_bound_beats_the_half_sum_certificate() {
        // Example 1 of the paper: the Shannon-flow inequality
        //   h(ABCD) <= 1/2 [h(AB) + h(BC) + h(CD) + h(ACD|AC) + h(ABD|BD)]
        // certifies 2^{(5*8)/2} = 2^20 with all five statistics equal to 2^8 — but it
        // is not tight: subadditivity alone gives h(ABCD) <= h(AB) + h(CD) = 16 bits,
        // and the modular witness v = (8, 0, 8, 0) attains it, so the LP optimum is 16.
        let q = examples::example_one();
        let mut dc = ConstraintSet::new();
        let n = 256u64;
        dc.push_named(&q, &[], &["A", "B"], n).unwrap();
        dc.push_named(&q, &[], &["B", "C"], n).unwrap();
        dc.push_named(&q, &[], &["C", "D"], n).unwrap();
        dc.push_named(&q, &["A", "C"], &["D"], n).unwrap();
        dc.push_named(&q, &["B", "D"], &["A"], n).unwrap();
        let b = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert!(
            (b.log2_bound - 16.0).abs() < 1e-5,
            "expected 16 bits, got {}",
            b.log2_bound
        );
        assert!(b.h.is_polymatroid());
        // strong duality still ties the duals to the optimum (equation (73))
        let dual_obj: f64 = b
            .constraint_duals
            .iter()
            .zip(dc.iter())
            .map(|(d, c)| d * c.log_bound())
            .sum();
        assert!((dual_obj - b.log2_bound).abs() < 1e-5);
    }

    #[test]
    fn four_cycle_bound() {
        // 4-cycle with all sizes N: AGM bound is N^2 (rho* = 2), and with cardinality
        // constraints only the polymatroid bound agrees.
        let q = examples::four_cycle();
        let dc = ConstraintSet::all_cardinalities(
            &q,
            &[("R", 1 << 8), ("S", 1 << 8), ("T", 1 << 8), ("W", 1 << 8)],
        )
        .unwrap();
        let b = polymatroid_bound_for_query(&q, &dc).unwrap();
        assert!((b.log2_bound - 16.0).abs() < 1e-6);
    }
}
