//! `wcoj-bounds` — output-size bounds for conjunctive queries under degree
//! constraints.
//!
//! This crate implements Section 4 of *Worst-Case Optimal Join Algorithms* (Ngo,
//! PODS 2018) and the bound-related machinery of Section 5:
//!
//! * the **AGM bound** (Corollary 4.2): the fractional edge cover LP (5)/(42) with
//!   `log` cardinalities as weights — [`agm`];
//! * **entropy set functions** of concrete query outputs (the entropy argument of
//!   Section 2 / 4.2), together with checks that they really are polymatroids —
//!   [`entropy`], [`setfn`];
//! * the **polymatroid bound** (44)/(68): an LP over all set functions on `2^[n]`
//!   satisfying the elemental Shannon inequalities plus the degree constraints —
//!   [`polymatroid`];
//! * the **modular LP** (54) and its dual (57) for *acyclic* degree constraints
//!   (Proposition 4.4), where the polymatroid bound is tight and poly-time
//!   computable — [`modular`];
//! * the **entropic bound** (43) in the regimes where it is computable, with the
//!   relationship between the bounds spelled out — [`entropic`];
//! * **Shannon-flow inequalities** (Definition 5) and **proof sequences**
//!   (Section 5.2.3), including a verifier, canonical sequences for the paper's
//!   examples, and a bounded search — [`flow`], [`proof`];
//! * numeric verification of **Friedgut's inequality** (Theorem 4.1) on concrete
//!   databases — [`friedgut`].
//!
//! # Example: the AGM bound of the triangle query
//!
//! ```
//! use wcoj_query::query::examples;
//! use wcoj_bounds::agm::{agm_bound_from_sizes, fractional_edge_cover_number};
//!
//! let q = examples::triangle();
//! // rho* of the triangle hypergraph is 3/2
//! let rho = fractional_edge_cover_number(&q.hypergraph());
//! assert!((rho - 1.5).abs() < 1e-9);
//! // with |R| = |S| = |T| = 1024 the AGM bound is 1024^{3/2} = 2^15
//! let b = agm_bound_from_sizes(&q, &[1024, 1024, 1024]).unwrap();
//! assert!((b.log2_bound - 15.0).abs() < 1e-6);
//! assert!((b.tuple_bound() - 32768.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agm;
pub mod entropic;
pub mod entropy;
pub mod flow;
pub mod friedgut;
pub mod modular;
pub mod polymatroid;
pub mod proof;
pub mod setfn;

pub use agm::{agm_bound, agm_bound_from_sizes, fractional_edge_cover_number, AgmBound};
pub use entropic::{entropic_bound, EntropicBound};
pub use entropy::entropy_of_relation;
pub use flow::{is_shannon_flow_inequality, DeltaVector};
pub use modular::{modular_bound, ModularBound};
pub use polymatroid::{polymatroid_bound, PolymatroidBound};
pub use proof::{ProofSequence, ProofStep};
pub use setfn::SetFunction;

/// Errors produced when computing bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundError {
    /// The underlying linear program failed (infeasible/unbounded/degenerate).
    Lp(wcoj_lp::LpError),
    /// The bound is infinite: some variable cannot be covered/bounded by the
    /// constraints (e.g. a vertex not covered by any atom, or an unbound variable in
    /// the sense of Proposition 5.2).
    Infinite {
        /// A human-readable reason.
        reason: String,
    },
    /// The requested bound needs an acyclic constraint set but the given one is
    /// cyclic.
    CyclicConstraints,
    /// Constraint/query mismatch (e.g. sizes list of the wrong length).
    Invalid(String),
    /// Too many variables for the exponential-size polymatroid LP.
    TooManyVariables(usize),
    /// A query/database level error.
    Database(String),
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::Lp(e) => write!(f, "LP error: {e}"),
            BoundError::Infinite { reason } => write!(f, "bound is infinite: {reason}"),
            BoundError::CyclicConstraints => {
                write!(f, "constraint set is cyclic; an acyclic set is required")
            }
            BoundError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            BoundError::TooManyVariables(n) => {
                write!(
                    f,
                    "{n} variables is too many for the exponential polymatroid LP"
                )
            }
            BoundError::Database(msg) => write!(f, "database error: {msg}"),
        }
    }
}

impl std::error::Error for BoundError {}

impl From<wcoj_lp::LpError> for BoundError {
    fn from(e: wcoj_lp::LpError) -> Self {
        BoundError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BoundError::CyclicConstraints.to_string().contains("cyclic"));
        assert!(BoundError::TooManyVariables(30).to_string().contains("30"));
        assert!(BoundError::Invalid("x".into()).to_string().contains('x'));
        assert!(BoundError::Infinite {
            reason: "unbound".into()
        }
        .to_string()
        .contains("unbound"));
        let e: BoundError = wcoj_lp::LpError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        assert!(BoundError::Database("boom".into())
            .to_string()
            .contains("boom"));
    }
}
