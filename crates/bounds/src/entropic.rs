//! The entropic bound (43) — `max { h([n]) : h ∈ Γ̄*_n ∩ H_DC }` — in the regimes
//! where it is computable.
//!
//! The closure of the entropic cone `Γ̄*_n` has no finite description for `n ≥ 4`
//! (Section 3.2 of the paper), so the exact entropic bound is not computable in
//! general. It is, however, always sandwiched by two LPs this workspace can solve:
//!
//! ```text
//! modular bound  ≤  entropic bound  ≤  polymatroid bound
//! ```
//!
//! * the **upper bound** is the polymatroid bound (68), since `Γ̄*_n ⊆ Γ_n`;
//! * the **lower bound** is the maximum over *modular* functions (LP (54) without the
//!   acyclicity precondition), since every non-negative modular function is the
//!   entropy of a product of independent uniform variables and hence entropic.
//!
//! The sandwich collapses to an exact value when:
//!
//! * `n ≤ 3` — `Γ̄*_n = Γ_n` for up to three variables (the first gap is the
//!   Zhang–Yeung inequality at `n = 4`), so the upper bound is exact;
//! * the constraint set is **acyclic** — Proposition 4.4 gives
//!   modular = polymatroid, squeezing the entropic bound between equal values;
//! * the two LP values happen to coincide numerically.

use crate::modular::modular_bound_unchecked;
use crate::polymatroid::polymatroid_bound;
use crate::BoundError;
use wcoj_query::{ConjunctiveQuery, ConstraintSet};

/// The result of bracketing (and, when possible, pinning down) the entropic bound.
#[derive(Debug, Clone)]
pub struct EntropicBound {
    /// `log2` lower bound: the best modular witness (always attainable by a product
    /// distribution, hence entropic).
    pub log2_lower: f64,
    /// `log2` upper bound: the polymatroid relaxation.
    pub log2_upper: f64,
    /// Whether `log2_lower == log2_upper` is known to pin the entropic bound exactly
    /// (small `n`, acyclic constraints, or numerically coinciding LPs).
    pub exact: bool,
}

impl EntropicBound {
    /// The usable `log2` bound on `|Q|` (the upper end of the bracket).
    pub fn log2_bound(&self) -> f64 {
        self.log2_upper
    }

    /// The bound as a tuple count `2^{log2_upper}`.
    pub fn tuple_bound(&self) -> f64 {
        self.log2_upper.exp2()
    }

    /// Width of the bracket in bits (0 when [`EntropicBound::exact`]).
    pub fn gap(&self) -> f64 {
        self.log2_upper - self.log2_lower
    }
}

/// Numerical tolerance for declaring the two LP values equal.
const EPS: f64 = 1e-6;

/// Bracket the entropic bound (43) for `n` variables under degree constraints `dc`,
/// reporting an exact value whenever one of the collapse conditions applies.
pub fn entropic_bound(n: usize, dc: &ConstraintSet) -> Result<EntropicBound, BoundError> {
    let upper = polymatroid_bound(n, dc)?;
    let lower = modular_bound_unchecked(n, dc)?;
    // NEG_INFINITY (an empty guard relation) compares equal to itself, so the
    // empty-output case is reported exact automatically.
    let coincide = (upper.log2_bound - lower.log2_bound).abs() < EPS
        || (upper.log2_bound == f64::NEG_INFINITY && lower.log2_bound == f64::NEG_INFINITY);
    let exact = n <= 3 || dc.is_acyclic(n) || coincide;
    Ok(EntropicBound {
        log2_lower: lower.log2_bound,
        log2_upper: upper.log2_bound,
        exact,
    })
}

/// Convenience wrapper taking the query for its variable count.
pub fn entropic_bound_for_query(
    query: &ConjunctiveQuery,
    dc: &ConstraintSet,
) -> Result<EntropicBound, BoundError> {
    entropic_bound(query.num_vars(), dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::entropy_of_relation;
    use wcoj_query::query::examples;
    use wcoj_storage::{Relation, Schema};

    #[test]
    fn triangle_entropic_bound_is_exact_and_matches_agm() {
        // n = 3: the entropic and polymatroid bounds coincide; with cardinality
        // constraints only, both equal the AGM bound N^{3/2}.
        let q = examples::triangle();
        let dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 1024), ("S", 1024), ("T", 1024)]).unwrap();
        let b = entropic_bound_for_query(&q, &dc).unwrap();
        assert!(b.exact);
        assert!((b.log2_bound() - 15.0).abs() < 1e-5);
        // Shearer: the modular witness attains the bound, so the bracket is tight.
        assert!(b.gap() < 1e-5);
    }

    #[test]
    fn acyclic_constraints_give_exact_bound() {
        let q = examples::chain_with_guard();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A"], 1 << 7).unwrap();
        dc.push_named(&q, &["A"], &["B"], 1 << 3).unwrap();
        dc.push_named(&q, &["B"], &["C"], 1 << 4).unwrap();
        dc.push_named(&q, &["C"], &["D"], 1 << 5).unwrap();
        let b = entropic_bound(4, &dc).unwrap();
        assert!(b.exact, "acyclic DC collapses the sandwich");
        assert!((b.log2_bound() - 19.0).abs() < 1e-5);
        assert!(b.gap() < 1e-5);
    }

    #[test]
    fn bracket_ordering_always_holds() {
        // Cyclic 4-variable set: exactness is not guaranteed, but the bracket must be
        // ordered and finite.
        let q = examples::four_cycle();
        let dc =
            ConstraintSet::all_cardinalities(&q, &[("R", 256), ("S", 256), ("T", 256), ("W", 256)])
                .unwrap();
        let b = entropic_bound_for_query(&q, &dc).unwrap();
        assert!(b.log2_lower <= b.log2_upper + 1e-9);
        assert!((b.log2_upper - 16.0).abs() < 1e-5); // AGM: rho* = 2 at N = 2^8
    }

    #[test]
    fn empty_relation_is_exactly_zero_tuples() {
        let q = examples::triangle();
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 0), ("S", 8), ("T", 8)]).unwrap();
        let b = entropic_bound_for_query(&q, &dc).unwrap();
        assert!(b.exact);
        assert_eq!(b.tuple_bound(), 0.0);
    }

    #[test]
    fn unbounded_variable_is_an_error() {
        let q = examples::triangle();
        let mut dc = ConstraintSet::new();
        dc.push_named(&q, &[], &["A", "B"], 64).unwrap();
        assert!(matches!(
            entropic_bound_for_query(&q, &dc).unwrap_err(),
            BoundError::Infinite { .. }
        ));
    }

    #[test]
    fn empirical_entropy_respects_the_entropic_bound() {
        // The entropy function of any concrete output satisfying DC is an entropic
        // member of H_DC, so its total entropy is at most the upper bound.
        let out = Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![vec![1, 2, 3], vec![1, 3, 3], vec![2, 2, 1], vec![2, 3, 1]],
        );
        let q = examples::triangle();
        // |R|,|S|,|T| >= the projections of `out`, so `out` is a feasible output
        let dc = ConstraintSet::all_cardinalities(&q, &[("R", 4), ("S", 4), ("T", 4)]).unwrap();
        let b = entropic_bound_for_query(&q, &dc).unwrap();
        let h = entropy_of_relation(&out, &["A", "B", "C"]);
        assert!(h.total() <= b.log2_bound() + 1e-9);
    }
}
