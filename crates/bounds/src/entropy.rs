//! Empirical entropy functions — the "entropy argument" of Sections 2 and 4.2.
//!
//! Given a query output `Q(D)`, construct the uniform distribution over its tuples and
//! let `H` be its entropy function. Then (Section 2 of the paper):
//!
//! * `H[A_[n]] = log2 |Q(D)|` (uniformity),
//! * `H[A_F] ≤ log2 |R_F|` for every atom (support bound, inequality (31)),
//! * `H[Y | X] ≤ log2 N_{Y|X}` for every satisfied degree constraint,
//! * `H` is a polymatroid (non-negative, monotone, submodular).
//!
//! These facts are what turn a linear inequality over entropies into an output-size
//! bound. This module computes such empirical entropy functions exactly so that tests
//! and experiments can verify every step of the argument on concrete data.

use crate::setfn::SetFunction;
use std::collections::HashMap;
use wcoj_storage::{Relation, Value};

/// The entropy (in bits) of the empirical distribution given by `counts` (absolute
/// frequencies).
fn entropy_of_counts(counts: &HashMap<Vec<Value>, usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// The entropy function of the uniform distribution over the tuples of `rel`, with
/// variable `i` of the resulting [`SetFunction`] bound to column `columns[i]`.
///
/// Every marginal entropy `H[S]` for `S ⊆ columns` is computed exactly. The relation
/// must be non-empty for the distribution to exist; an empty relation yields the zero
/// function (by convention `log 0 := 0` is avoided — there is simply no distribution,
/// and all bounds are vacuous).
pub fn entropy_of_relation(rel: &Relation, columns: &[&str]) -> SetFunction {
    let n = columns.len();
    let mut h = SetFunction::zero(n);
    if rel.is_empty() {
        return h;
    }
    let positions: Vec<usize> = columns
        .iter()
        .map(|c| rel.schema().require(c).expect("column must exist"))
        .collect();
    let total = rel.len();
    for mask in 1u32..(1u32 << n) {
        let cols: Vec<usize> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| positions[i])
            .collect();
        let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
        for t in rel.iter() {
            let key: Vec<Value> = cols.iter().map(|&p| t[p]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        h.set(mask, entropy_of_counts(&counts, total));
    }
    h
}

/// `H[Y | X]` of an empirical entropy function, with variable sets given as index
/// lists (chain rule (29)).
pub fn conditional_entropy(h: &SetFunction, y: &[usize], x: &[usize]) -> f64 {
    let y_mask = crate::setfn::mask_of(y) | crate::setfn::mask_of(x);
    let x_mask = crate::setfn::mask_of(x);
    h.conditional(y_mask, x_mask)
}

/// Verify the support bound (31) numerically: `H[S] ≤ log2 |support_S|` where the
/// support size is the number of distinct projections of `rel` onto the columns of
/// `S`. Returns the maximum violation (≤ ~1e-9 when the inequality holds).
pub fn max_support_bound_violation(rel: &Relation, columns: &[&str]) -> f64 {
    let h = entropy_of_relation(rel, columns);
    let mut worst = f64::NEG_INFINITY;
    if rel.is_empty() {
        return 0.0;
    }
    for mask in 1u32..(1u32 << columns.len()) {
        let cols: Vec<&str> = (0..columns.len())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| columns[i])
            .collect();
        let support = rel.project(&cols).map(|p| p.len()).unwrap_or(0).max(1);
        let violation = h.get(mask) - (support as f64).log2();
        worst = worst.max(violation);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::Schema;

    fn output_like_relation() -> Relation {
        // A plausible triangle-query output over variables A, B, C.
        Relation::from_rows(
            Schema::new(&["A", "B", "C"]),
            vec![
                vec![1, 2, 3],
                vec![1, 2, 4],
                vec![1, 3, 3],
                vec![2, 2, 3],
                vec![2, 5, 1],
                vec![3, 1, 1],
            ],
        )
    }

    #[test]
    fn uniform_distribution_total_entropy_is_log_size() {
        let r = output_like_relation();
        let h = entropy_of_relation(&r, &["A", "B", "C"]);
        assert!((h.total() - (6f64).log2()).abs() < 1e-9);
        assert_eq!(h.get(0), 0.0);
    }

    #[test]
    fn empirical_entropies_are_polymatroids() {
        let r = output_like_relation();
        let h = entropy_of_relation(&r, &["A", "B", "C"]);
        assert!(h.is_polymatroid(), "entropy functions are polymatroids");
        // marginal order can be anything, but every single-variable entropy is at most
        // log2 of its distinct-value count
        assert!(max_support_bound_violation(&r, &["A", "B", "C"]) < 1e-9);
    }

    #[test]
    fn marginal_of_uniform_single_column() {
        // two columns; the first column is uniform over 4 values, the second constant
        let rows = (0..4).map(|i| vec![i, 7]).collect();
        let r = Relation::from_rows(Schema::new(&["X", "Y"]), rows);
        let h = entropy_of_relation(&r, &["X", "Y"]);
        assert!((h.get(0b01) - 2.0).abs() < 1e-9); // H[X] = log2 4
        assert!(h.get(0b10).abs() < 1e-9); // H[Y] = 0 (constant)
        assert!((h.get(0b11) - 2.0).abs() < 1e-9);
        // conditional H[Y | X] = 0, H[X | Y] = 2
        assert!(conditional_entropy(&h, &[1], &[0]).abs() < 1e-9);
        assert!((conditional_entropy(&h, &[0], &[1]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_distribution_has_less_entropy_than_uniform() {
        // column heavily skewed toward value 0
        let mut rows: Vec<Vec<u64>> = (0..7).map(|i| vec![0, i]).collect();
        rows.push(vec![1, 100]);
        let r = Relation::from_rows(Schema::new(&["X", "Y"]), rows);
        let h = entropy_of_relation(&r, &["X", "Y"]);
        // H[X] for distribution (7/8, 1/8) is about 0.543 bits < 1 bit
        assert!(h.get(0b01) < 1.0);
        assert!(h.get(0b01) > 0.5);
        // support bound still holds
        assert!(max_support_bound_violation(&r, &["X", "Y"]) < 1e-9);
    }

    #[test]
    fn empty_relation_gives_zero_function() {
        let r = Relation::empty(Schema::new(&["A", "B"]));
        let h = entropy_of_relation(&r, &["A", "B"]);
        assert_eq!(h.total(), 0.0);
        assert_eq!(max_support_bound_violation(&r, &["A", "B"]), 0.0);
    }

    #[test]
    fn column_subset_can_be_reordered() {
        let r = output_like_relation();
        let h = entropy_of_relation(&r, &["C", "A"]);
        assert_eq!(h.num_vars(), 2);
        // H[{C,A}] equals the entropy of the (A,C) marginal regardless of order
        let h2 = entropy_of_relation(&r, &["A", "C"]);
        assert!((h.total() - h2.total()).abs() < 1e-12);
    }

    #[test]
    fn degree_constraint_implies_conditional_entropy_bound() {
        // deg(B | A) <= 2 in this relation; hence H[B | A] <= 1 bit.
        let r = Relation::from_rows(
            Schema::new(&["A", "B"]),
            vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 5], vec![3, 6]],
        );
        assert_eq!(r.max_degree(&["A"], &["B"]).unwrap(), 2);
        let h = entropy_of_relation(&r, &["A", "B"]);
        let cond = conditional_entropy(&h, &[1], &[0]);
        assert!(
            cond <= 1.0 + 1e-9,
            "H[B|A] = {cond} must be <= log2(deg) = 1"
        );
    }
}
