//! Proof sequences for Shannon-flow inequalities (Section 5.2.3).
//!
//! A Shannon-flow inequality `h([n]) ≤ Σ δ_{Y|X} · h(Y|X)` admits a *proof
//! sequence*: a list of rewrite steps that transforms the right-hand-side multiset of
//! conditional terms into (at least) one full unit of `h([n])`, where every step is
//! sound for all polymatroids — it never increases the value of the multiset on any
//! `h ∈ Γ_n`. PANDA executes such sequences as query-processing plans; here they are
//! data plus a verifier, so tests can check the certificates the bound computations
//! produce.
//!
//! The step set is the paper's:
//!
//! * **decomposition** (chain rule, an equality): `h(Y|X) → h(Z|X) + h(Y|Z)` for
//!   `X ⊆ Z ⊆ Y`;
//! * **composition** (the inverse): `h(Z|X) + h(Y|Z) → h(Y|X)`;
//! * **monotonicity**: `h(Y|X) → h(Z|X)` for `X ⊆ Z ⊆ Y` (drop variables);
//! * **submodularity**: `h(Y|X) → h(Y∪Z | X∪Z)` (strengthen the conditioning set).
//!
//! [`shearer_sequence`] constructs the canonical sequence for any fractional edge
//! cover — the constructive counterpart of Shearer's lemma (Corollary 5.5) — and
//! [`examples`] spells out the paper's triangle instance.

use crate::flow::DeltaVector;
use crate::setfn::mask_of;
use std::collections::HashMap;
use wcoj_query::Hypergraph;

/// One rewrite step of a proof sequence. All subsets are bitmasks over the `n` ground
/// variables; `weight` is the amount of the source term(s) consumed and of the target
/// term(s) produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofStep {
    /// `weight · h(Y|X) → weight · [h(Z|X) + h(Y|Z)]`, requires `X ⊆ Z ⊆ Y`.
    Decompose {
        /// Conditioning set `X`.
        x: u32,
        /// Intermediate set `Z`.
        z: u32,
        /// Full set `Y`.
        y: u32,
        /// Amount rewritten.
        weight: f64,
    },
    /// `weight · [h(Z|X) + h(Y|Z)] → weight · h(Y|X)`, requires `X ⊆ Z ⊆ Y`.
    Compose {
        /// Conditioning set `X`.
        x: u32,
        /// Intermediate set `Z`.
        z: u32,
        /// Full set `Y`.
        y: u32,
        /// Amount rewritten.
        weight: f64,
    },
    /// `weight · h(Y|X) → weight · h(Z|X)`, requires `X ⊆ Z ⊆ Y` (sound by
    /// monotonicity (32)).
    Monotone {
        /// Conditioning set `X`.
        x: u32,
        /// Retained set `Z`.
        z: u32,
        /// Original set `Y`.
        y: u32,
        /// Amount rewritten.
        weight: f64,
    },
    /// `weight · h(Y|X) → weight · h(Y∪Z | X∪Z)`, requires `X ⊆ Y` (sound by
    /// submodularity (33)).
    Submodular {
        /// Conditioning set `X`.
        x: u32,
        /// Original set `Y`.
        y: u32,
        /// Added conditioning variables `Z`.
        z: u32,
        /// Amount rewritten.
        weight: f64,
    },
}

/// Errors raised while verifying a proof sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofError {
    /// A step's subsets violate its `X ⊆ Z ⊆ Y` side condition.
    MalformedStep(usize),
    /// A step consumes more of a term than the current state holds.
    InsufficientCoefficient {
        /// Index of the offending step.
        step: usize,
        /// The term `(X, Y)` that ran short.
        term: (u32, u32),
        /// Coefficient available at that point.
        available: f64,
        /// Coefficient the step needed.
        needed: f64,
    },
    /// After all steps, the state holds less than one unit of `h([n])`.
    Incomplete {
        /// Final coefficient of `h([n] | ∅)`.
        final_coefficient: f64,
    },
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::MalformedStep(i) => write!(f, "step {i} violates its subset conditions"),
            ProofError::InsufficientCoefficient {
                step,
                term,
                available,
                needed,
            } => write!(
                f,
                "step {step} needs {needed} of h({:b}|{:b}) but only {available} is available",
                term.1, term.0
            ),
            ProofError::Incomplete { final_coefficient } => write!(
                f,
                "sequence ends with {final_coefficient} < 1 units of h([n])"
            ),
        }
    }
}

impl std::error::Error for ProofError {}

/// Numerical slack for coefficient accounting.
const EPS: f64 = 1e-9;

/// A proof sequence: an ordered list of [`ProofStep`]s together with the verifier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProofSequence {
    steps: Vec<ProofStep>,
}

impl ProofSequence {
    /// The empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit steps.
    pub fn from_steps(steps: Vec<ProofStep>) -> Self {
        ProofSequence { steps }
    }

    /// Append a step.
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// The steps in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Verify the sequence against the initial coefficient vector `delta` on `n`
    /// variables: replay every step with exact coefficient accounting and check that
    /// the final state holds at least one unit of `h([n] | ∅)`.
    ///
    /// A successful verification certifies that `h([n]) ≤ Σ δ_{Y|X} h(Y|X)` holds for
    /// every polymatroid, because each step is individually sound on `Γ_n`.
    pub fn verify(&self, n: usize, delta: &DeltaVector) -> Result<(), ProofError> {
        let full: u32 = ((1u64 << n) - 1) as u32;
        let mut state: HashMap<(u32, u32), f64> = HashMap::new();
        for &(x, y, d) in delta.terms() {
            *state.entry((x, y)).or_insert(0.0) += d;
        }

        let take = |state: &mut HashMap<(u32, u32), f64>,
                    step: usize,
                    x: u32,
                    y: u32,
                    w: f64|
         -> Result<(), ProofError> {
            let available = state.get(&(x, y)).copied().unwrap_or(0.0);
            if available + EPS < w {
                return Err(ProofError::InsufficientCoefficient {
                    step,
                    term: (x, y),
                    available,
                    needed: w,
                });
            }
            state.insert((x, y), available - w);
            Ok(())
        };
        let give = |state: &mut HashMap<(u32, u32), f64>, x: u32, y: u32, w: f64| {
            if x != y {
                *state.entry((x, y)).or_insert(0.0) += w;
            }
            // h(Y|Y) = 0: producing it is a no-op
        };

        for (i, step) in self.steps.iter().enumerate() {
            match *step {
                ProofStep::Decompose { x, z, y, weight } => {
                    if x & !z != 0 || z & !y != 0 || weight < -EPS {
                        return Err(ProofError::MalformedStep(i));
                    }
                    take(&mut state, i, x, y, weight)?;
                    give(&mut state, x, z, weight);
                    give(&mut state, z, y, weight);
                }
                ProofStep::Compose { x, z, y, weight } => {
                    if x & !z != 0 || z & !y != 0 || weight < -EPS {
                        return Err(ProofError::MalformedStep(i));
                    }
                    if x != z {
                        take(&mut state, i, x, z, weight)?;
                    }
                    if z != y {
                        take(&mut state, i, z, y, weight)?;
                    }
                    give(&mut state, x, y, weight);
                }
                ProofStep::Monotone { x, z, y, weight } => {
                    if x & !z != 0 || z & !y != 0 || weight < -EPS {
                        return Err(ProofError::MalformedStep(i));
                    }
                    take(&mut state, i, x, y, weight)?;
                    give(&mut state, x, z, weight);
                }
                ProofStep::Submodular { x, y, z, weight } => {
                    if x & !y != 0 || weight < -EPS {
                        return Err(ProofError::MalformedStep(i));
                    }
                    take(&mut state, i, x, y, weight)?;
                    give(&mut state, x | z, y | z, weight);
                }
            }
        }

        let final_coefficient = state.get(&(0, full)).copied().unwrap_or(0.0);
        if final_coefficient + EPS < 1.0 {
            return Err(ProofError::Incomplete { final_coefficient });
        }
        Ok(())
    }
}

/// Construct the canonical proof sequence for Shearer's lemma: given a fractional
/// edge cover `weights` of `h`, produce a sequence proving
/// `h([n]) ≤ Σ_F δ_F · h(A_F)` from the cover property alone.
///
/// Construction (the generalization of the paper's triangle walkthrough): fix the
/// variable order `0, 1, …, n−1`. Each edge term `h(F)` is decomposed along the order
/// into `Σ_j h(u_j | {u_1..u_{j−1}})`, each piece is strengthened by submodularity to
/// condition on *all* earlier variables, and the resulting per-level coefficients —
/// at least 1 at every level because `δ` covers every vertex — are composed back up
/// the chain into `h([n])`.
pub fn shearer_sequence(h: &Hypergraph, weights: &[f64]) -> ProofSequence {
    assert_eq!(weights.len(), h.num_edges(), "one weight per edge");
    assert!(
        h.is_fractional_edge_cover(weights),
        "weights must form a fractional edge cover"
    );
    let n = h.num_vertices();
    let mut seq = ProofSequence::new();

    for (edge, &w) in h.edges().iter().zip(weights) {
        if w <= 0.0 {
            continue;
        }
        let mut vars: Vec<usize> = edge.clone();
        vars.sort_unstable();
        let y = mask_of(&vars);
        // decompose h(F) along the global order: h(F) = Σ_j h(u_j | u_1..u_{j-1})
        let mut prefix: u32 = 0;
        for (j, &u) in vars.iter().enumerate() {
            let z = prefix | (1u32 << u);
            if j + 1 < vars.len() {
                seq.push(ProofStep::Decompose {
                    x: prefix,
                    z,
                    y,
                    weight: w,
                });
            }
            // strengthen: condition on all global variables before u
            let all_before: u32 = (1u32 << u) - 1;
            let extra = all_before & !prefix;
            if extra != 0 {
                seq.push(ProofStep::Submodular {
                    x: prefix,
                    y: z,
                    z: extra,
                    weight: w,
                });
            }
            prefix = z;
        }
    }

    // compose the chain h(v_1) + h(v_2|v_1) + … into h([n]) with unit weight
    let mut built: u32 = 1; // after the first level the state holds h({0})
    for v in 1..n {
        let z = built;
        let y = built | (1u32 << v);
        seq.push(ProofStep::Compose {
            x: 0,
            z,
            y,
            weight: 1.0,
        });
        built = y;
    }
    seq
}

/// Pre-built proof sequences for the paper's running examples.
pub mod examples {
    use super::*;

    /// The triangle instance of Shearer's lemma:
    /// `h(ABC) ≤ ½ h(AB) + ½ h(BC) + ½ h(AC)` (Section 2).
    pub fn triangle() -> (DeltaVector, ProofSequence) {
        let h = Hypergraph::cycle(3);
        let weights = [0.5, 0.5, 0.5];
        let mut dv = DeltaVector::new();
        for (edge, &w) in h.edges().iter().zip(&weights) {
            dv.add(0, mask_of(edge), w);
        }
        (dv, shearer_sequence(&h, &weights))
    }

    /// The chain-style inequality `h(ABC) ≤ h(AB) + h(C|B)`: one submodularity step
    /// and one composition, no fractional weights.
    pub fn chain() -> (DeltaVector, ProofSequence) {
        let mut dv = DeltaVector::new();
        dv.add(0b000, 0b011, 1.0); // h(AB)
        dv.add(0b010, 0b110, 1.0); // h(C|B)
        let seq = ProofSequence::from_steps(vec![
            ProofStep::Submodular {
                x: 0b010,
                y: 0b110,
                z: 0b001,
                weight: 1.0,
            }, // h(C|B) -> h(C|AB)
            ProofStep::Compose {
                x: 0,
                z: 0b011,
                y: 0b111,
                weight: 1.0,
            }, // h(AB) + h(C|AB) -> h(ABC)
        ]);
        (dv, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::is_shannon_flow_inequality;

    #[test]
    fn triangle_sequence_verifies() {
        let (dv, seq) = examples::triangle();
        assert!(!seq.is_empty());
        seq.verify(3, &dv).expect("canonical triangle proof");
        // the certified inequality really is a Shannon-flow inequality
        assert!(is_shannon_flow_inequality(3, &dv).unwrap());
    }

    #[test]
    fn chain_sequence_verifies() {
        let (dv, seq) = examples::chain();
        assert_eq!(seq.len(), 2);
        seq.verify(3, &dv).expect("chain proof");
        assert!(is_shannon_flow_inequality(3, &dv).unwrap());
    }

    #[test]
    fn shearer_sequences_verify_for_standard_covers() {
        for (h, w) in [
            (Hypergraph::cycle(3), vec![0.5; 3]),
            (Hypergraph::cycle(4), vec![0.5; 4]),
            (Hypergraph::cycle(5), vec![0.5; 5]),
            (Hypergraph::loomis_whitney(4), vec![1.0 / 3.0; 4]),
            (Hypergraph::clique(4), vec![1.0 / 3.0; 6]),
            (Hypergraph::star(3), vec![1.0; 3]),
        ] {
            let mut dv = DeltaVector::new();
            for (edge, &weight) in h.edges().iter().zip(&w) {
                if weight > 0.0 {
                    dv.add(0, mask_of(edge), weight);
                }
            }
            let seq = shearer_sequence(&h, &w);
            seq.verify(h.num_vertices(), &dv)
                .unwrap_or_else(|e| panic!("cover {w:?} failed: {e}"));
        }
    }

    #[test]
    fn integral_cover_sequence_verifies() {
        let h = Hypergraph::cycle(3);
        let w = vec![1.0, 1.0, 0.0];
        let mut dv = DeltaVector::new();
        dv.add(0, 0b011, 1.0);
        dv.add(0, 0b110, 1.0);
        let seq = shearer_sequence(&h, &w);
        seq.verify(3, &dv).expect("integral cover proof");
    }

    #[test]
    fn insufficient_coefficients_detected() {
        // claim the triangle bound with coefficients 0.4 — the composition at the end
        // must run short.
        let h = Hypergraph::cycle(3);
        let mut dv = DeltaVector::new();
        for edge in h.edges() {
            dv.add(0, mask_of(edge), 0.4);
        }
        let (_, seq) = examples::triangle(); // the 0.5-weighted steps
        let err = seq.verify(3, &dv).unwrap_err();
        assert!(matches!(err, ProofError::InsufficientCoefficient { .. }));
    }

    #[test]
    fn incomplete_sequence_detected() {
        let (dv, _) = examples::chain();
        let seq = ProofSequence::from_steps(vec![ProofStep::Submodular {
            x: 0b010,
            y: 0b110,
            z: 0b001,
            weight: 1.0,
        }]);
        assert!(matches!(
            seq.verify(3, &dv).unwrap_err(),
            ProofError::Incomplete { .. }
        ));
    }

    #[test]
    fn malformed_steps_detected() {
        let (dv, _) = examples::chain();
        // Z not a superset of X in a decompose
        let seq = ProofSequence::from_steps(vec![ProofStep::Decompose {
            x: 0b011,
            z: 0b100,
            y: 0b111,
            weight: 0.5,
        }]);
        assert_eq!(
            seq.verify(3, &dv).unwrap_err(),
            ProofError::MalformedStep(0)
        );
    }

    #[test]
    fn monotonicity_step_drops_variables() {
        // h(ABC) >= h(A): prove h(A) <= 1·h(ABC)
        let mut dv = DeltaVector::new();
        dv.add(0, 0b111, 1.0);
        let seq = ProofSequence::from_steps(vec![]);
        // the state already holds h(ABC); nothing to do for the full-set target
        seq.verify(3, &dv).expect("identity proof");
        // and a monotone step to h(A) then recompose must fail (information lost)
        let seq2 = ProofSequence::from_steps(vec![ProofStep::Monotone {
            x: 0,
            z: 0b001,
            y: 0b111,
            weight: 1.0,
        }]);
        assert!(matches!(
            seq2.verify(3, &dv).unwrap_err(),
            ProofError::Incomplete { .. }
        ));
    }

    #[test]
    fn error_display() {
        assert!(ProofError::MalformedStep(3).to_string().contains('3'));
        assert!(ProofError::Incomplete {
            final_coefficient: 0.5
        }
        .to_string()
        .contains("0.5"));
        let e = ProofError::InsufficientCoefficient {
            step: 1,
            term: (0b01, 0b11),
            available: 0.25,
            needed: 0.5,
        };
        assert!(e.to_string().contains("0.25"));
    }
}
