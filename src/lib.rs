//! Facade crate re-exporting the whole workspace public API.
pub use wcoj_bounds as bounds;
pub use wcoj_core as core;
pub use wcoj_lp as lp;
pub use wcoj_obs as obs;
pub use wcoj_query as query;
pub use wcoj_service as service;
pub use wcoj_storage as storage;
pub use wcoj_workloads as workloads;
